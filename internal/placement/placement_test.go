package placement

import (
	"context"
	"fmt"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/session"
	"axml/internal/view"
	"axml/internal/workload"
	"axml/internal/xmltree"
)

var wan = netsim.Link{LatencyMs: 20, BytesPerMs: 200}

// testWorld builds data + c0/c1/c2 on a WAN, a catalog at data and a
// view manager.
func testWorld(t *testing.T, items int) (*core.System, *view.Manager) {
	t.Helper()
	net := netsim.New()
	peers := []netsim.PeerID{"data", "c0", "c1", "c2"}
	netsim.Uniform(net, peers, wan)
	sys := core.NewSystem(net)
	for _, p := range peers {
		sys.MustAddPeer(p)
	}
	data, _ := sys.Peer("data")
	if err := data.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: items, PriceMax: 1000, DescWords: 4, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	views := view.NewManager(sys)
	t.Cleanup(views.Close)
	t.Cleanup(sys.Close)
	return sys, views
}

const hotViewSrc = `for $i in doc("catalog")/item where $i/price < 500 return $i`
const hotShape = `for $i in doc("catalog")/item where $i/price < 100 return $i/name`

// inject records n queries for the view from one consumer.
func inject(obs *Observer, consumer netsim.PeerID, n int) {
	for i := 0; i < n; i++ {
		obs.ObserveQuery(consumer, hotShape, []string{view.DocPrefix + "hot"})
	}
}

func placementsOf(t *testing.T, views *view.Manager, name string) []netsim.PeerID {
	t.Helper()
	ps, ok := views.PlacementsOf(name)
	if !ok {
		t.Fatalf("view %q gone", name)
	}
	return ps
}

func TestObserverDemandShapesAndDecay(t *testing.T) {
	obs := NewObserver()
	obs.ObserveQuery("c0", "shapeA", []string{"view:hot", "catalog"})
	obs.ObserveQuery("c0", "shapeA", []string{"view:hot"})
	obs.ObserveQuery("c1", "shapeB", []string{"view:hot"})
	d := obs.Demand("view:hot")
	if d["c0"] != 2 || d["c1"] != 1 {
		t.Fatalf("demand = %v", d)
	}
	if d := obs.Demand("catalog"); d["c0"] != 1 {
		t.Fatalf("catalog demand = %v", d)
	}
	if s := obs.Shapes("view:hot"); s["shapeA"] != 2 || s["shapeB"] != 1 {
		t.Fatalf("shapes = %v", s)
	}
	if top := obs.TopConsumers("view:hot"); len(top) != 2 || top[0] != "c0" {
		t.Fatalf("top = %v", top)
	}
	obs.Decay(0.5)
	if d := obs.Demand("view:hot"); d["c0"] != 1 || d["c1"] != 0.5 {
		t.Fatalf("decayed demand = %v", d)
	}
	for i := 0; i < 10; i++ {
		obs.Decay(0.1)
	}
	if d := obs.Demand("view:hot"); len(d) != 0 {
		t.Fatalf("demand should have decayed away, got %v", d)
	}
}

func TestObserverSplitsShipFromEvalTraffic(t *testing.T) {
	sys, views := testWorld(t, 60)
	obs := NewObserver()
	obs.SampleNetwork(sys.Net.Stats())
	// Materialization ships the view content with the "ship" kind.
	if err := views.Define("hot", hotViewSrc, "c0"); err != nil {
		t.Fatal(err)
	}
	obs.SampleNetwork(sys.Net.Stats())
	if r := obs.ShipRate("data", "c0"); r <= 0 {
		t.Errorf("ship rate data→c0 = %v, want > 0 after materialization", r)
	}
	if r := obs.ShipRate("data", "c1"); r != 0 {
		t.Errorf("ship rate data→c1 = %v, want 0", r)
	}
}

// TestMigratesToHottestConsumer: skewed demand pulls the view to its
// dominant reader, then the system stays put (no oscillation).
func TestMigratesToHottestConsumer(t *testing.T) {
	_, views := testWorld(t, 120)
	if err := views.Define("hot", hotViewSrc, "data"); err != nil {
		t.Fatal(err)
	}
	ctrl := New(views, Config{MaxReplicas: 1, Cooldown: 1})
	ctx := context.Background()
	inject(ctrl.Observer(), "c0", 20)
	inject(ctrl.Observer(), "c1", 2)
	decisions, err := ctrl.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 || decisions[0].Action != "migrate" ||
		decisions[0].From != "data" || decisions[0].To != "c0" {
		t.Fatalf("decisions = %v, want one migrate data→c0", decisions)
	}
	if ps := placementsOf(t, views, "hot"); len(ps) != 1 || ps[0] != "c0" {
		t.Fatalf("placements = %v", ps)
	}
	// Stable demand: no further moves over several rounds.
	for round := 0; round < 5; round++ {
		inject(ctrl.Observer(), "c0", 20)
		inject(ctrl.Observer(), "c1", 2)
		decisions, err := ctrl.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(decisions) != 0 {
			t.Fatalf("round %d: unexpected decisions %v (thrashing)", round, decisions)
		}
	}
	if ps := placementsOf(t, views, "hot"); len(ps) != 1 || ps[0] != "c0" {
		t.Fatalf("placement moved again: %v", ps)
	}
}

// TestReplicatesUnderSharedDemand: two strong consumers end with a
// copy each (MaxReplicas 2), and the layout then stays stable.
func TestReplicatesUnderSharedDemand(t *testing.T) {
	_, views := testWorld(t, 120)
	if err := views.Define("hot", hotViewSrc, "data"); err != nil {
		t.Fatal(err)
	}
	ctrl := New(views, Config{MaxReplicas: 2, Cooldown: 0})
	ctx := context.Background()
	actions := 0
	for round := 0; round < 8; round++ {
		inject(ctrl.Observer(), "c0", 20)
		inject(ctrl.Observer(), "c1", 15)
		ds, err := ctrl.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		actions += len(ds)
	}
	ps := placementsOf(t, views, "hot")
	has := map[netsim.PeerID]bool{}
	for _, p := range ps {
		has[p] = true
	}
	if !has["c0"] || !has["c1"] {
		t.Fatalf("placements = %v, want copies at c0 and c1", ps)
	}
	if actions > 4 {
		t.Errorf("took %d actions to converge on two copies (thrashing?)", actions)
	}
	// Converged: further rounds change nothing.
	for round := 0; round < 3; round++ {
		inject(ctrl.Observer(), "c0", 20)
		inject(ctrl.Observer(), "c1", 15)
		ds, err := ctrl.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != 0 {
			t.Fatalf("post-convergence decisions %v", ds)
		}
	}
}

// TestDemandShiftTriggersReMigration: when the hot consumer changes,
// the placement follows.
func TestDemandShiftTriggersReMigration(t *testing.T) {
	_, views := testWorld(t, 120)
	if err := views.Define("hot", hotViewSrc, "data"); err != nil {
		t.Fatal(err)
	}
	ctrl := New(views, Config{MaxReplicas: 1, Cooldown: 1})
	ctx := context.Background()
	inject(ctrl.Observer(), "c0", 20)
	if _, err := ctrl.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if ps := placementsOf(t, views, "hot"); ps[0] != "c0" {
		t.Fatalf("placements = %v", ps)
	}
	// Traffic moves to c2; demand decays, the view follows.
	moved := false
	for round := 0; round < 8 && !moved; round++ {
		inject(ctrl.Observer(), "c2", 25)
		ds, err := ctrl.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if d.Action == "migrate" && d.To == "c2" {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("view never followed the demand shift to c2")
	}
	if ps := placementsOf(t, views, "hot"); len(ps) != 1 || ps[0] != "c2" {
		t.Fatalf("placements = %v, want [c2]", ps)
	}
}

// TestBudgetEvictsLowestBenefitPlacement: a peer over its byte budget
// sheds the placement with the least demand behind it.
func TestBudgetEvictsLowestBenefitPlacement(t *testing.T) {
	_, views := testWorld(t, 120)
	if err := views.Define("hot", hotViewSrc, "c0"); err != nil {
		t.Fatal(err)
	}
	if err := views.Define("cold",
		`for $i in doc("catalog")/item where $i/price < 480 return $i`, "c0"); err != nil {
		t.Fatal(err)
	}
	var hotBytes, total int64
	for _, pi := range views.Placements() {
		total += pi.Bytes
		if pi.View == "hot" {
			hotBytes = pi.Bytes
		}
	}
	if hotBytes == 0 || total <= hotBytes {
		t.Fatalf("bad setup: hot=%d total=%d", hotBytes, total)
	}
	ctrl := New(views, Config{
		Budgets: map[netsim.PeerID]int64{"c0": hotBytes + (total-hotBytes)/2},
	})
	inject(ctrl.Observer(), "c0", 30) // demand for hot only
	ds, err := ctrl.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	evicted := ""
	for _, d := range ds {
		if d.Action == "evict" {
			evicted = d.View
		}
	}
	if evicted != "cold" {
		t.Fatalf("decisions = %v, want eviction of cold", ds)
	}
	if _, ok := views.PlacementsOf("cold"); ok {
		t.Error("cold placement still present after eviction")
	}
	if ps := placementsOf(t, views, "hot"); len(ps) != 1 || ps[0] != "c0" {
		t.Fatalf("hot placements = %v", ps)
	}
	var after int64
	for _, pi := range views.Placements() {
		if pi.At == "c0" {
			after += pi.Bytes
		}
	}
	if budget := ctrl.cfg.Budgets["c0"]; after > budget {
		t.Errorf("still over budget: %d > %d", after, budget)
	}
}

// TestBudgetFiltersMoveTargets: a hot consumer whose budget cannot
// hold the view is never chosen as a move target — otherwise every
// round would ship the view there and evict it again immediately.
func TestBudgetFiltersMoveTargets(t *testing.T) {
	_, views := testWorld(t, 120)
	if err := views.Define("hot", hotViewSrc, "data"); err != nil {
		t.Fatal(err)
	}
	var viewBytes int64
	for _, pi := range views.Placements() {
		viewBytes = pi.Bytes
	}
	ctrl := New(views, Config{
		MaxReplicas: 1, Cooldown: 0,
		Budgets: map[netsim.PeerID]int64{"c0": viewBytes / 2},
	})
	ctx := context.Background()
	for round := 0; round < 4; round++ {
		inject(ctrl.Observer(), "c0", 25)
		ds, err := ctrl.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != 0 {
			t.Fatalf("round %d: decisions %v — shipped toward a peer that cannot hold the view", round, ds)
		}
	}
	if ps := placementsOf(t, views, "hot"); len(ps) != 1 || ps[0] != "data" {
		t.Fatalf("placements = %v, want untouched [data]", ps)
	}
}

// TestEndToEndSessionsDriveMigration wires real sessions into the
// observer (session.WithTrafficSink — the structural interface match)
// and checks that skewed query traffic migrates the view and that
// results are multiset-identical across the move.
func TestEndToEndSessionsDriveMigration(t *testing.T) {
	sys, views := testWorld(t, 120)
	if err := views.Define("hot", hotViewSrc, "data"); err != nil {
		t.Fatal(err)
	}
	ctrl := New(views, Config{MaxReplicas: 1, Cooldown: 1})
	ctx := context.Background()
	newSess := func(at netsim.PeerID) *session.Local {
		s, err := session.NewLocal(sys, views, at, session.WithTrafficSink(ctrl.Observer()))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1 := newSess("c0"), newSess("c1")
	query := func(s *session.Local) map[xmltree.Digest]int {
		t.Helper()
		rows, err := s.Query(ctx, hotShape)
		if err != nil {
			t.Fatal(err)
		}
		forest, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		counts := map[xmltree.Digest]int{}
		for _, n := range forest {
			counts[xmltree.Hash(n)]++
		}
		return counts
	}
	before := query(s0)
	if len(before) == 0 {
		t.Fatal("query returned nothing")
	}
	for i := 0; i < 19; i++ {
		query(s0)
	}
	query(s1)
	ds, err := ctrl.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	migrated := false
	for _, d := range ds {
		if d.Action == "migrate" && d.To == "c0" {
			migrated = true
		}
	}
	if !migrated {
		t.Fatalf("decisions = %v, want a migration to c0", ds)
	}
	after := query(s0)
	if fmt.Sprint(len(after)) != fmt.Sprint(len(before)) {
		t.Fatalf("row count changed across migration: %d vs %d", len(after), len(before))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("result multiset changed across migration")
		}
	}
	if ps := placementsOf(t, views, "hot"); len(ps) != 1 || ps[0] != "c0" {
		t.Fatalf("placements = %v", ps)
	}
	if log := ctrl.Decisions(); len(log) == 0 {
		t.Error("decision log empty")
	}
}
