// Demand export: the serializable form of one deployment's placement
// signals, shipped coordinator-ward over the wire DEMAND verb. A
// member summarizes its Observer aggregates (per-document demand with
// per-shape weights and locally estimated selectivities), its document
// inventory and its view placements; the cluster coordinator
// (internal/cluster) aggregates exports across members and runs the
// same Scorer the in-process controller uses. Selectivities are
// estimated member-side — where the data and the optimizer's
// statistics live — so the coordinator never needs the documents
// themselves.

package placement

import (
	"fmt"
	"strconv"

	"axml/internal/xmltree"
)

// Export is one deployment's demand report.
type Export struct {
	// Member identifies the reporting deployment.
	Member string
	Docs   []DocExport
	Views  []ViewExport
	Loads  []LoadExport
}

// DocExport inventories one base document the member hosts.
type DocExport struct {
	Name  string
	Bytes int64
}

// ViewExport describes one view placement the member holds.
type ViewExport struct {
	Name  string
	Query string
	Mode  string // "incremental", "recompute" or "adopted"
	// Origin is the member owning the view's base document (the member
	// that defined it; adopted copies carry it along).
	Origin string
	// BaseDoc is the primary base document the view derives from.
	BaseDoc string
	// Base reports whether this deployment hosts the base document.
	Base  bool
	Bytes int64
	Trees int
}

// LoadExport is the decayed query demand one document saw at the
// member, split by normalized query shape.
type LoadExport struct {
	Doc    string
	Weight float64
	Shapes []ShapeExport
}

// ShapeExport is one query shape's decayed weight and the member's
// selectivity estimate for it.
type ShapeExport struct {
	Key    string
	Weight float64
	Sel    float64
}

// Weight returns the member's decayed demand against one document.
func (e Export) DemandWeight(doc string) float64 {
	for _, l := range e.Loads {
		if l.Doc == doc {
			return l.Weight
		}
	}
	return 0
}

// Decayed returns a copy of the export with every demand weight scaled
// by factor — the fail-open stand-in for a member that missed a DEMAND
// round: its last-known demand ages instead of vanishing (or wedging
// the round), so a transient outage degrades smoothly.
func (e Export) Decayed(factor float64) Export {
	out := e
	out.Loads = make([]LoadExport, len(e.Loads))
	for i, l := range e.Loads {
		nl := l
		nl.Weight *= factor
		nl.Shapes = make([]ShapeExport, len(l.Shapes))
		for j, sh := range l.Shapes {
			sh.Weight *= factor
			nl.Shapes[j] = sh
		}
		out.Loads[i] = nl
	}
	return out
}

// PerQueryBytes mirrors the controller's per-query transfer estimate
// for the coordinator: the view size scaled by the demand-weighted
// mean selectivity across the given loads (each member estimated its
// shapes' selectivities locally), floored like the estimator floors
// outputs.
func PerQueryBytes(viewBytes int64, loads []LoadExport) float64 {
	sel, weight := 0.0, 0.0
	for _, l := range loads {
		for _, sh := range l.Shapes {
			s := sh.Sel
			if s <= 0 {
				s = 1
			}
			sel += s * sh.Weight
			weight += sh.Weight
		}
	}
	if weight > 0 {
		sel /= weight
	} else {
		sel = 1
	}
	out := float64(viewBytes) * sel
	if out < 16 {
		out = 16
	}
	return out
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ToXML renders the export as a single x:demand element (one line on
// the wire; xmltree escapes attribute values, so query strings with
// quotes survive the round trip).
func (e Export) ToXML() *xmltree.Node {
	root := xmltree.E("x:demand", xmltree.A("member", e.Member))
	for _, d := range e.Docs {
		root.AppendChild(xmltree.E("doc",
			xmltree.A("name", d.Name),
			xmltree.A("bytes", fmt.Sprint(d.Bytes))))
	}
	for _, v := range e.Views {
		root.AppendChild(xmltree.E("view",
			xmltree.A("name", v.Name),
			xmltree.A("query", v.Query),
			xmltree.A("mode", v.Mode),
			xmltree.A("origin", v.Origin),
			xmltree.A("basedoc", v.BaseDoc),
			xmltree.A("base", strconv.FormatBool(v.Base)),
			xmltree.A("bytes", fmt.Sprint(v.Bytes)),
			xmltree.A("trees", fmt.Sprint(v.Trees))))
	}
	for _, l := range e.Loads {
		le := xmltree.E("load",
			xmltree.A("doc", l.Doc),
			xmltree.A("weight", ftoa(l.Weight)))
		for _, sh := range l.Shapes {
			le.AppendChild(xmltree.E("shape",
				xmltree.A("key", sh.Key),
				xmltree.A("weight", ftoa(sh.Weight)),
				xmltree.A("sel", ftoa(sh.Sel))))
		}
		root.AppendChild(le)
	}
	return root
}

// ExportFromXML parses an x:demand element back into an Export. It is
// liberal about missing attributes (they default to zero values) but
// strict about the element labels, so a truncated or foreign reply
// fails loudly instead of decoding as an empty demand.
func ExportFromXML(root *xmltree.Node) (Export, error) {
	if root == nil || root.Label != "x:demand" {
		return Export{}, fmt.Errorf("placement: demand reply is not x:demand")
	}
	var e Export
	e.Member, _ = root.Attr("member")
	atoi := func(s string) int64 {
		n, _ := strconv.ParseInt(s, 10, 64)
		return n
	}
	atof := func(s string) float64 {
		f, _ := strconv.ParseFloat(s, 64)
		return f
	}
	for _, ch := range root.ChildElements() {
		switch ch.Label {
		case "doc":
			name, _ := ch.Attr("name")
			bytes, _ := ch.Attr("bytes")
			e.Docs = append(e.Docs, DocExport{Name: name, Bytes: atoi(bytes)})
		case "view":
			var v ViewExport
			v.Name, _ = ch.Attr("name")
			v.Query, _ = ch.Attr("query")
			v.Mode, _ = ch.Attr("mode")
			v.Origin, _ = ch.Attr("origin")
			v.BaseDoc, _ = ch.Attr("basedoc")
			base, _ := ch.Attr("base")
			v.Base = base == "true"
			bytes, _ := ch.Attr("bytes")
			v.Bytes = atoi(bytes)
			trees, _ := ch.Attr("trees")
			v.Trees = int(atoi(trees))
			e.Views = append(e.Views, v)
		case "load":
			var l LoadExport
			l.Doc, _ = ch.Attr("doc")
			w, _ := ch.Attr("weight")
			l.Weight = atof(w)
			for _, sh := range ch.ChildElementsByLabel("shape") {
				var s ShapeExport
				s.Key, _ = sh.Attr("key")
				sw, _ := sh.Attr("weight")
				s.Weight = atof(sw)
				sl, _ := sh.Attr("sel")
				s.Sel = atof(sl)
				l.Shapes = append(l.Shapes, s)
			}
			e.Loads = append(e.Loads, l)
		default:
			return Export{}, fmt.Errorf("placement: unexpected demand element %q", ch.Label)
		}
	}
	return e, nil
}
