package placement

import (
	"sort"
	"sync"

	"axml/internal/netsim"
)

// Observer aggregates the demand signals the placement controller
// decides from. Two feeds:
//
//   - ObserveQuery implements session.TrafficSink (structurally — this
//     package never imports session): each executed query reports its
//     evaluating peer, normalized shape key and the documents its plan
//     reads, which becomes per-(document, consumer) and per-(document,
//     shape) demand.
//   - SampleNetwork diffs netsim's per-link, per-kind byte counters
//     between calls, splitting maintenance traffic (the "ship" kind:
//     view refresh deltas, data landings) from evaluation traffic, so
//     the scorer can price what a replica costs to keep fresh from
//     what it actually cost recently rather than from a guess.
//
// Demand decays exponentially between controller rounds (Decay), so
// the controller follows traffic shifts instead of the whole history.
type Observer struct {
	mu sync.Mutex
	// demand: doc → consumer peer → decayed query count.
	demand map[string]map[netsim.PeerID]float64
	// shapes: doc → normalized shape key → decayed query count.
	shapes map[string]map[string]float64
	// shipRate: per-link EWMA of maintenance ("ship") bytes per sample
	// window; evalRate the same for everything else.
	shipRate map[linkKey]float64
	evalRate map[linkKey]float64
	last     netsim.Stats
	sampled  bool
}

type linkKey struct{ from, to netsim.PeerID }

// NewObserver creates an empty observer.
func NewObserver() *Observer {
	return &Observer{
		demand:   map[string]map[netsim.PeerID]float64{},
		shapes:   map[string]map[string]float64{},
		shipRate: map[linkKey]float64{},
		evalRate: map[linkKey]float64{},
	}
}

// ObserveQuery records one executed query (session.TrafficSink).
func (o *Observer) ObserveQuery(at netsim.PeerID, shape string, docs []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, doc := range docs {
		byPeer := o.demand[doc]
		if byPeer == nil {
			byPeer = map[netsim.PeerID]float64{}
			o.demand[doc] = byPeer
		}
		byPeer[at]++
		byShape := o.shapes[doc]
		if byShape == nil {
			byShape = map[string]float64{}
			o.shapes[doc] = byShape
		}
		byShape[shape]++
	}
}

// SampleNetwork folds the transfer volume since the previous sample
// into the per-link rates (EWMA, half-weight to history). Call it once
// per controller round with the network's current Stats.
func (o *Observer) SampleNetwork(st netsim.Stats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.sampled {
		shipDelta, evalDelta := diffByKind(o.last, st)
		foldRate(o.shipRate, shipDelta)
		foldRate(o.evalRate, evalDelta)
	}
	o.last, o.sampled = st, true
}

// diffByKind splits the per-link byte growth between two snapshots
// into maintenance ("ship") bytes and everything else.
func diffByKind(prev, cur netsim.Stats) (ship, other map[linkKey]float64) {
	ship = map[linkKey]float64{}
	other = map[linkKey]float64{}
	for from, m := range cur.PerLink {
		for to, ls := range m {
			var prevShip, prevTotal int64
			if pm, ok := prev.PerLink[from]; ok {
				p := pm[to]
				prevShip = p.ByKind["ship"]
				prevTotal = p.Bytes
			}
			k := linkKey{from, to}
			s := float64(ls.ByKind["ship"] - prevShip)
			if s > 0 {
				ship[k] = s
			}
			if o := float64(ls.Bytes-prevTotal) - s; o > 0 {
				other[k] = o
			}
		}
	}
	return ship, other
}

// foldRate merges one window's deltas into the EWMA map. Links that
// saw no traffic this window decay toward zero.
func foldRate(rate map[linkKey]float64, delta map[linkKey]float64) {
	for k, r := range rate {
		rate[k] = r / 2
	}
	for k, d := range delta {
		rate[k] += d / 2
	}
}

// Decay ages the query-demand counters by multiplying them with
// factor (0 forgets everything, 1 keeps the full history); entries
// that decay below noise are dropped.
func (o *Observer) Decay(factor float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	decayMap := func(m map[string]map[netsim.PeerID]float64) {
		for doc, byPeer := range m {
			for p, v := range byPeer {
				if v *= factor; v < 0.01 {
					delete(byPeer, p)
				} else {
					byPeer[p] = v
				}
			}
			if len(byPeer) == 0 {
				delete(m, doc)
			}
		}
	}
	decayMap(o.demand)
	for doc, byShape := range o.shapes {
		for s, v := range byShape {
			if v *= factor; v < 0.01 {
				delete(byShape, s)
			} else {
				byShape[s] = v
			}
		}
		if len(byShape) == 0 {
			delete(o.shapes, doc)
		}
	}
}

// Demand returns the decayed per-consumer query weight of one
// document.
func (o *Observer) Demand(doc string) map[netsim.PeerID]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := map[netsim.PeerID]float64{}
	for p, v := range o.demand[doc] {
		out[p] = v
	}
	return out
}

// Shapes returns the decayed per-shape query weight of one document.
func (o *Observer) Shapes(doc string) map[string]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := map[string]float64{}
	for s, v := range o.shapes[doc] {
		out[s] = v
	}
	return out
}

// Loads returns the full decayed per-(document, shape) demand table —
// the raw material of a member's federated demand export (Export).
func (o *Observer) Loads() map[string]map[string]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]map[string]float64, len(o.shapes))
	for doc, byShape := range o.shapes {
		m := make(map[string]float64, len(byShape))
		for s, v := range byShape {
			m[s] = v
		}
		out[doc] = m
	}
	return out
}

// ShipRate returns the recent maintenance-traffic rate (bytes per
// controller round) on the from→to link.
func (o *Observer) ShipRate(from, to netsim.PeerID) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shipRate[linkKey{from, to}]
}

// TopConsumers returns the consumers of a document sorted by demand
// (highest first, peer order as the deterministic tie-break).
func (o *Observer) TopConsumers(doc string) []netsim.PeerID {
	d := o.Demand(doc)
	out := make([]netsim.PeerID, 0, len(d))
	for p := range d {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if d[out[i]] != d[out[j]] {
			return d[out[i]] > d[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
