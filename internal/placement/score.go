// The benefit/cost scorer. Every quantity is expressed in the
// optimizer's scalar cost units (opt.Weights over bytes, messages and
// virtual milliseconds), computed with the same per-link latency/
// bandwidth model (netsim.LinkInfo) and the same output-cardinality
// estimates (opt.Estimator.QuerySelectivity) the plan search prices
// plans with — the controller and the optimizer can disagree about
// traffic, but never about what a transfer costs.

package placement

import (
	"context"
	"fmt"

	"axml/internal/netsim"
	"axml/internal/opt"
	"axml/internal/view"
	"axml/internal/xquery"
)

// envelope mirrors netsim's per-message framing overhead (and the
// estimator's constant of the same name).
const envelope = 64

// selCacheCap bounds the per-shape selectivity cache; it resets and
// rebuilds lazily beyond this.
const selCacheCap = 1024

// xfer prices one message of size bytes over from→to, mirroring
// opt.Estimator.transfer scalarized with the configured weights.
// Local delivery is free, like in the evaluator.
func (c *Controller) xfer(from, to netsim.PeerID, bytes float64) float64 {
	if from == "" || to == "" || from == to {
		return 0
	}
	l := c.sys.Net.LinkInfo(from, to)
	t := l.LatencyMs
	if l.BytesPerMs > 0 {
		t += (bytes + envelope) / l.BytesPerMs
	}
	w := c.cfg.Weights
	return w.PerByte*(bytes+envelope) + w.PerMessage + w.PerMs*t
}

// perQueryBytes estimates what one query against the view ships from a
// placement to its consumer: the view size scaled by the demand-
// weighted mean selectivity of the observed query shapes (the
// optimizer's own cardinality model), floored like the estimator
// floors outputs.
func (c *Controller) perQueryBytes(doc string, viewBytes int64) float64 {
	shapes := c.obs.Shapes(doc)
	est := opt.NewEstimator(c.sys)
	sel, weight := 0.0, 0.0
	for shape, w := range shapes {
		s, ok := c.sel[shape]
		if !ok {
			if len(c.sel) >= selCacheCap {
				// The observer decays stale shapes away but this cache
				// is keyed by the same unbounded strings; a periodic
				// reset bounds it (entries rebuild lazily from live
				// shapes) so shape churn cannot leak memory.
				c.sel = map[string]float64{}
			}
			s = 1
			if q, err := xquery.Parse(shape); err == nil {
				s = est.QuerySelectivity(q)
			}
			c.sel[shape] = s
		}
		sel += s * w
		weight += w
	}
	if weight > 0 {
		sel /= weight
	} else {
		sel = 1
	}
	out := float64(viewBytes) * sel
	if out < 16 {
		out = 16
	}
	return out
}

// serveCost is the per-round cost of answering the observed demand
// from the given serving sites: each consumer reads from its cheapest
// site.
func (c *Controller) serveCost(demand map[netsim.PeerID]float64, sites []netsim.PeerID, perQ float64) float64 {
	total := 0.0
	for consumer, weight := range demand {
		best := -1.0
		for _, s := range sites {
			cost := c.xfer(s, consumer, perQ)
			if best < 0 || cost < best {
				best = cost
			}
		}
		if best < 0 {
			continue
		}
		total += weight * best
	}
	return total
}

// maintCost is the per-round cost of keeping a copy at `at` fresh from
// the base: the observed maintenance rate toward any current placement
// when there is one (netsim's "ship"-kind accounting), else ChurnFrac
// of the view size — priced over the base→at link either way.
func (c *Controller) maintCost(base, at netsim.PeerID, viewBytes int64, placed []view.PlacementInfo) float64 {
	if base == "" || base == at {
		return 0
	}
	rate := 0.0
	for _, pi := range placed {
		if r := c.obs.ShipRate(base, pi.At); r > rate {
			rate = r
		}
	}
	if rate == 0 {
		rate = c.cfg.ChurnFrac * float64(viewBytes)
	}
	return c.xfer(base, at, rate)
}

// evictionBenefit is the per-round serving-cost increase of removing
// one placement, net of the maintenance it saves — with the base peer
// as the implicit fallback site, so losing the last copy is priced
// against serving straight from the base rather than as infinite.
func (c *Controller) evictionBenefit(name string, placed []view.PlacementInfo, victim view.PlacementInfo) float64 {
	doc := view.DocPrefix + name
	demand := c.obs.Demand(doc)
	base, _ := c.views.BaseOf(name)
	perQ := c.perQueryBytes(doc, victim.Bytes)
	with := []netsim.PeerID{}
	without := []netsim.PeerID{}
	for _, pi := range placed {
		with = append(with, pi.At)
		if pi.At != victim.At {
			without = append(without, pi.At)
		}
	}
	if base != "" {
		with = append(with, base)
		without = append(without, base)
	}
	benefit := c.serveCost(demand, without, perQ) - c.serveCost(demand, with, perQ)
	benefit -= c.maintCost(base, victim.At, victim.Bytes, placed)
	if benefit < 0 {
		benefit = 0
	}
	return benefit
}

// plan scores the candidate actions for one view and returns the best
// one when it clears the hysteresis margin, without executing it — the
// caller actuates via apply with the controller lock released, because
// migrate/replicate ship the view's bytes over the network. At most
// one action per view per round keeps every move attributable and the
// system analyzable for convergence. usage (current view bytes per
// peer) filters candidates up front: a peer whose budget cannot hold
// the view is never a move target — without this, a tight budget would
// plan the ship here and evict it in enforceBudgets every round.
func (c *Controller) plan(round int, name string, placed []view.PlacementInfo,
	usage map[netsim.PeerID]int64) *Decision {
	doc := view.DocPrefix + name
	demand := c.obs.Demand(doc)
	if len(demand) == 0 {
		return nil
	}
	sites := make([]netsim.PeerID, len(placed))
	viewBytes := int64(0)
	for i, pi := range placed {
		sites[i] = pi.At
		if pi.Bytes > viewBytes {
			viewBytes = pi.Bytes
		}
	}
	base, _ := c.views.BaseOf(name)
	perQ := c.perQueryBytes(doc, viewBytes)
	cur := c.serveCost(demand, sites, perQ)
	curMaint := 0.0
	for _, s := range sites {
		curMaint += c.maintCost(base, s, viewBytes, placed)
	}

	type candidate struct {
		action   string
		from, to netsim.PeerID
		gain     float64 // net per-round gain, move cost amortized in
		oneTime  float64
	}
	var best *candidate
	consider := func(cand candidate) {
		if best == nil || cand.gain > best.gain {
			b := cand
			best = &b
		}
	}

	hot := c.obs.TopConsumers(doc)
	if len(hot) > c.cfg.TopK {
		hot = hot[:c.cfg.TopK]
	}
	placedAt := map[netsim.PeerID]bool{}
	for _, s := range sites {
		placedAt[s] = true
	}
	for _, consumer := range hot {
		if placedAt[consumer] {
			continue
		}
		if _, ok := c.sys.Peer(consumer); !ok {
			continue
		}
		if b := c.budgetFor(consumer); b > 0 && usage[consumer]+viewBytes > b {
			continue // the target could not keep the copy anyway
		}
		newMaint := c.maintCost(base, consumer, viewBytes, placed)
		// Replicate: one more copy, one more maintenance stream.
		if len(sites) < c.cfg.MaxReplicas {
			oneTime := c.xfer(base, consumer, float64(viewBytes))
			gain := cur - c.serveCost(demand, append(append([]netsim.PeerID{}, sites...), consumer), perQ) -
				newMaint - oneTime/c.cfg.HorizonRounds
			consider(candidate{action: "replicate", to: consumer, gain: gain, oneTime: oneTime})
		}
		// Migrate: swap each existing copy for one at the consumer.
		for _, from := range sites {
			moved := make([]netsim.PeerID, 0, len(sites))
			for _, s := range sites {
				if s != from {
					moved = append(moved, s)
				}
			}
			moved = append(moved, consumer)
			oneTime := c.xfer(from, consumer, float64(viewBytes))
			gain := cur - c.serveCost(demand, moved, perQ) +
				c.maintCost(base, from, viewBytes, placed) - newMaint -
				oneTime/c.cfg.HorizonRounds
			consider(candidate{action: "migrate", from: from, to: consumer, gain: gain, oneTime: oneTime})
		}
	}
	// Drop a replica whose maintenance outweighs its serving benefit.
	if len(sites) > 1 {
		for _, from := range sites {
			rest := make([]netsim.PeerID, 0, len(sites)-1)
			for _, s := range sites {
				if s != from {
					rest = append(rest, s)
				}
			}
			gain := c.maintCost(base, from, viewBytes, placed) -
				(c.serveCost(demand, rest, perQ) - cur)
			consider(candidate{action: "drop", from: from, gain: gain})
		}
	}

	if best == nil || best.gain <= c.cfg.MinGainFrac*(cur+curMaint)+1e-9 {
		return nil
	}
	return &Decision{
		Round: round, View: name, Action: best.action,
		From: best.from, To: best.to,
		GainPerRound: best.gain, OneTime: best.oneTime,
		Reason: fmt.Sprintf("demand-weighted serve cost %.1f/round", cur),
	}
}

// apply executes a planned action. Callers must NOT hold c.mu: migrate
// and replicate ship the view's contents across the network (the
// lockedcall invariant — a reader of Rounds()/Decisions() must never
// block behind a multi-megabyte transfer, and the remote side of the
// ship must be free to feed traffic back into this controller's
// observer).
func (c *Controller) apply(ctx context.Context, d *Decision) error {
	switch d.Action {
	case "migrate":
		return c.views.Migrate(ctx, d.View, d.From, d.To)
	case "replicate":
		return c.views.AddPlacement(d.View, d.To)
	case "drop":
		return c.views.DropPlacement(d.View, d.From)
	}
	return fmt.Errorf("placement: unknown action %q", d.Action)
}
