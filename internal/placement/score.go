// The benefit/cost scorer. Every quantity is expressed in the
// optimizer's scalar cost units (opt.Weights over bytes, messages and
// virtual milliseconds), computed with the same per-link latency/
// bandwidth model (netsim.LinkInfo) and the same output-cardinality
// estimates (opt.Estimator.QuerySelectivity) the plan search prices
// plans with — the controller and the optimizer can disagree about
// traffic, but never about what a transfer costs.
//
// The model lives in an exported Scorer decoupled from core.System so
// the federated cluster coordinator (internal/cluster) prices
// cross-deployment moves with exactly the same math the in-process
// controller uses: the link model is a callback and everything about
// one view's situation arrives as a ViewLoad built by the caller.

package placement

import (
	"context"
	"fmt"
	"sort"

	"axml/internal/netsim"
	"axml/internal/opt"
	"axml/internal/view"
	"axml/internal/xquery"
)

// envelope mirrors netsim's per-message framing overhead (and the
// estimator's constant of the same name).
const envelope = 64

// selCacheCap bounds the per-shape selectivity cache; it resets and
// rebuilds lazily beyond this.
const selCacheCap = 1024

// Scorer values candidate placement actions for one view: the
// per-round cost of serving the observed demand from a placement set,
// the per-round cost of keeping each replica fresh, and the one-time
// cost of a move. Construct with NewScorer.
type Scorer struct {
	cfg     Config
	link    func(from, to netsim.PeerID) netsim.Link
	hasPeer func(netsim.PeerID) bool
}

// NewScorer builds a scorer with the config's defaults filled in.
// link supplies the from→to transfer model (nil prices every remote
// hop with the zero link: bytes and messages only, no latency term);
// hasPeer reports whether a consumer is a viable placement target
// (nil admits every consumer the demand names).
func NewScorer(cfg Config, link func(from, to netsim.PeerID) netsim.Link,
	hasPeer func(netsim.PeerID) bool) *Scorer {
	return &Scorer{cfg: cfg.filled(), link: link, hasPeer: hasPeer}
}

// ViewLoad is everything the scorer needs to price one view's
// placement: where it is, how big it is, who reads it how often, and
// what keeping a copy fresh costs. The in-process controller builds it
// from its Observer; the cluster coordinator from member demand
// exports.
type ViewLoad struct {
	Name  string
	Base  netsim.PeerID // peer hosting the primary base document ("" = unknown)
	Sites []netsim.PeerID
	Bytes int64
	// Demand is the decayed per-consumer query weight against the view.
	Demand map[netsim.PeerID]float64
	// PerQuery estimates the bytes one query ships from a placement to
	// its consumer (view size × demand-weighted mean shape selectivity).
	PerQuery float64
	// MaintRate is the observed maintenance volume (bytes per round)
	// toward any current placement; 0 falls back to ChurnFrac × Bytes.
	MaintRate float64
	// Usage is the current view bytes placed per peer, for budget
	// filtering of move targets.
	Usage map[netsim.PeerID]int64
	// Budget returns a peer's byte budget (0 = unlimited); nil means
	// unlimited everywhere.
	Budget func(netsim.PeerID) int64
}

// xfer prices one message of size bytes over from→to, mirroring
// opt.Estimator.transfer scalarized with the configured weights.
// Local delivery is free, like in the evaluator.
func (s *Scorer) xfer(from, to netsim.PeerID, bytes float64) float64 {
	if from == "" || to == "" || from == to {
		return 0
	}
	var l netsim.Link
	if s.link != nil {
		l = s.link(from, to)
	}
	t := l.LatencyMs
	if l.BytesPerMs > 0 {
		t += (bytes + envelope) / l.BytesPerMs
	}
	w := s.cfg.Weights
	return w.PerByte*(bytes+envelope) + w.PerMessage + w.PerMs*t
}

// ServeCost is the per-round cost of answering the observed demand
// from the given serving sites: each consumer reads from its cheapest
// site.
func (s *Scorer) ServeCost(demand map[netsim.PeerID]float64, sites []netsim.PeerID, perQ float64) float64 {
	total := 0.0
	for consumer, weight := range demand {
		best := -1.0
		for _, site := range sites {
			cost := s.xfer(site, consumer, perQ)
			if best < 0 || cost < best {
				best = cost
			}
		}
		if best < 0 {
			continue
		}
		total += weight * best
	}
	return total
}

// rate is the per-round maintenance volume for one copy of the view:
// the observed rate when there is one, else ChurnFrac of the view
// size.
func (s *Scorer) rate(v ViewLoad) float64 {
	if v.MaintRate > 0 {
		return v.MaintRate
	}
	return s.cfg.ChurnFrac * float64(v.Bytes)
}

// maintCost prices keeping a copy at `at` fresh from the base over the
// base→at link.
func (s *Scorer) maintCost(base, at netsim.PeerID, rate float64) float64 {
	if base == "" || base == at {
		return 0
	}
	return s.xfer(base, at, rate)
}

// EvictionBenefit is the per-round serving-cost increase of removing
// the copy at victim, net of the maintenance it saves — with the base
// peer as the implicit fallback site, so losing the last copy is
// priced against serving straight from the base rather than as
// infinite.
func (s *Scorer) EvictionBenefit(v ViewLoad, victim netsim.PeerID) float64 {
	with := append([]netsim.PeerID{}, v.Sites...)
	without := make([]netsim.PeerID, 0, len(v.Sites))
	for _, site := range v.Sites {
		if site != victim {
			without = append(without, site)
		}
	}
	if v.Base != "" {
		with = append(with, v.Base)
		without = append(without, v.Base)
	}
	benefit := s.ServeCost(v.Demand, without, v.PerQuery) - s.ServeCost(v.Demand, with, v.PerQuery)
	benefit -= s.maintCost(v.Base, victim, s.rate(v))
	if benefit < 0 {
		benefit = 0
	}
	return benefit
}

// topConsumers sorts the demand's consumers highest weight first (peer
// order as the deterministic tie-break).
func topConsumers(demand map[netsim.PeerID]float64) []netsim.PeerID {
	out := make([]netsim.PeerID, 0, len(demand))
	for p := range demand {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if demand[out[i]] != demand[out[j]] {
			return demand[out[i]] > demand[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Plan scores the candidate actions for one view and returns the best
// one when it clears the hysteresis margin, without executing it — the
// caller actuates separately, because migrate/replicate ship the
// view's bytes over the network. At most one action per view per
// round keeps every move attributable and the system analyzable for
// convergence. v.Usage (current view bytes per peer) filters
// candidates up front: a peer whose budget cannot hold the view is
// never a move target — without this, a tight budget would plan the
// ship here and evict it in budget enforcement every round.
func (s *Scorer) Plan(round int, v ViewLoad) *Decision {
	if len(v.Demand) == 0 {
		return nil
	}
	rate := s.rate(v)
	cur := s.ServeCost(v.Demand, v.Sites, v.PerQuery)
	curMaint := 0.0
	for _, site := range v.Sites {
		curMaint += s.maintCost(v.Base, site, rate)
	}

	type candidate struct {
		action   string
		from, to netsim.PeerID
		gain     float64 // net per-round gain, move cost amortized in
		oneTime  float64
	}
	var best *candidate
	consider := func(cand candidate) {
		if best == nil || cand.gain > best.gain {
			b := cand
			best = &b
		}
	}

	hot := topConsumers(v.Demand)
	if len(hot) > s.cfg.TopK {
		hot = hot[:s.cfg.TopK]
	}
	placedAt := map[netsim.PeerID]bool{}
	for _, site := range v.Sites {
		placedAt[site] = true
	}
	for _, consumer := range hot {
		if placedAt[consumer] {
			continue
		}
		if s.hasPeer != nil && !s.hasPeer(consumer) {
			continue
		}
		if v.Budget != nil {
			if b := v.Budget(consumer); b > 0 && v.Usage[consumer]+v.Bytes > b {
				continue // the target could not keep the copy anyway
			}
		}
		newMaint := s.maintCost(v.Base, consumer, rate)
		// Replicate: one more copy, one more maintenance stream.
		if len(v.Sites) < s.cfg.MaxReplicas {
			oneTime := s.xfer(v.Base, consumer, float64(v.Bytes))
			gain := cur - s.ServeCost(v.Demand, append(append([]netsim.PeerID{}, v.Sites...), consumer), v.PerQuery) -
				newMaint - oneTime/s.cfg.HorizonRounds
			consider(candidate{action: "replicate", to: consumer, gain: gain, oneTime: oneTime})
		}
		// Migrate: swap each existing copy for one at the consumer.
		for _, from := range v.Sites {
			moved := make([]netsim.PeerID, 0, len(v.Sites))
			for _, site := range v.Sites {
				if site != from {
					moved = append(moved, site)
				}
			}
			moved = append(moved, consumer)
			oneTime := s.xfer(from, consumer, float64(v.Bytes))
			gain := cur - s.ServeCost(v.Demand, moved, v.PerQuery) +
				s.maintCost(v.Base, from, rate) - newMaint -
				oneTime/s.cfg.HorizonRounds
			consider(candidate{action: "migrate", from: from, to: consumer, gain: gain, oneTime: oneTime})
		}
	}
	// Drop a replica whose maintenance outweighs its serving benefit.
	if len(v.Sites) > 1 {
		for _, from := range v.Sites {
			rest := make([]netsim.PeerID, 0, len(v.Sites)-1)
			for _, site := range v.Sites {
				if site != from {
					rest = append(rest, site)
				}
			}
			gain := s.maintCost(v.Base, from, rate) -
				(s.ServeCost(v.Demand, rest, v.PerQuery) - cur)
			consider(candidate{action: "drop", from: from, gain: gain})
		}
	}

	if best == nil || best.gain <= s.cfg.MinGainFrac*(cur+curMaint)+1e-9 {
		return nil
	}
	return &Decision{
		Round: round, View: v.Name, Action: best.action,
		From: best.from, To: best.to,
		GainPerRound: best.gain, OneTime: best.oneTime,
		Reason: fmt.Sprintf("demand-weighted serve cost %.1f/round", cur),
	}
}

// perQueryBytes estimates what one query against the view ships from a
// placement to its consumer: the view size scaled by the demand-
// weighted mean selectivity of the observed query shapes (the
// optimizer's own cardinality model), floored like the estimator
// floors outputs.
func (c *Controller) perQueryBytes(doc string, viewBytes int64) float64 {
	shapes := c.obs.Shapes(doc)
	est := opt.NewEstimator(c.sys)
	sel, weight := 0.0, 0.0
	for shape, w := range shapes {
		s, ok := c.sel[shape]
		if !ok {
			if len(c.sel) >= selCacheCap {
				// The observer decays stale shapes away but this cache
				// is keyed by the same unbounded strings; a periodic
				// reset bounds it (entries rebuild lazily from live
				// shapes) so shape churn cannot leak memory.
				c.sel = map[string]float64{}
			}
			s = 1
			if q, err := xquery.Parse(shape); err == nil {
				s = est.QuerySelectivity(q)
			}
			c.sel[shape] = s
		}
		sel += s * w
		weight += w
	}
	if weight > 0 {
		sel /= weight
	} else {
		sel = 1
	}
	out := float64(viewBytes) * sel
	if out < 16 {
		out = 16
	}
	return out
}

// load assembles the scorer's input for one view from the controller's
// observer and the manager's placement map. bytes overrides the view
// size when positive (eviction prices the victim's own copy).
func (c *Controller) load(name string, placed []view.PlacementInfo,
	usage map[netsim.PeerID]int64, bytes int64) ViewLoad {
	doc := view.DocPrefix + name
	base, _ := c.views.BaseOf(name)
	if bytes <= 0 {
		for _, pi := range placed {
			if pi.Bytes > bytes {
				bytes = pi.Bytes
			}
		}
	}
	rate := 0.0
	sites := make([]netsim.PeerID, len(placed))
	for i, pi := range placed {
		sites[i] = pi.At
		if r := c.obs.ShipRate(base, pi.At); r > rate {
			rate = r
		}
	}
	return ViewLoad{
		Name:      name,
		Base:      base,
		Sites:     sites,
		Bytes:     bytes,
		Demand:    c.obs.Demand(doc),
		PerQuery:  c.perQueryBytes(doc, bytes),
		MaintRate: rate,
		Usage:     usage,
		Budget:    c.budgetFor,
	}
}

// plan scores one view's candidate actions against the live demand.
func (c *Controller) plan(round int, name string, placed []view.PlacementInfo,
	usage map[netsim.PeerID]int64) *Decision {
	return c.score.Plan(round, c.load(name, placed, usage, 0))
}

// evictionBenefit is the per-round serving-cost increase of removing
// one placement (see Scorer.EvictionBenefit).
func (c *Controller) evictionBenefit(name string, placed []view.PlacementInfo, victim view.PlacementInfo) float64 {
	return c.score.EvictionBenefit(c.load(name, placed, nil, victim.Bytes), victim.At)
}

// apply executes a planned action. Callers must NOT hold c.mu: migrate
// and replicate ship the view's contents across the network (the
// lockedcall invariant — a reader of Rounds()/Decisions() must never
// block behind a multi-megabyte transfer, and the remote side of the
// ship must be free to feed traffic back into this controller's
// observer).
func (c *Controller) apply(ctx context.Context, d *Decision) error {
	switch d.Action {
	case "migrate":
		return c.views.Migrate(ctx, d.View, d.From, d.To)
	case "replicate":
		return c.views.AddPlacement(d.View, d.To)
	case "drop":
		return c.views.DropPlacement(d.View, d.From)
	}
	return fmt.Errorf("placement: unknown action %q", d.Action)
}
