package session

import (
	"fmt"
	"strings"

	"axml/internal/peer"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// The Exec statement language: the wire protocol's update verbs in
// statement form, so local and remote sessions execute updates through
// the same call.
//
//	delete <path query>
//	replace <path query> with <xml>
//
// Anything else is treated as a plain query (results discarded).

// Update is one parsed update statement.
type Update struct {
	// Kind is "delete" or "replace".
	Kind string
	// Query selects the target nodes (a bare path query).
	Query *xquery.Query
	// With is the replacement tree (replace only).
	With *xmltree.Node
}

// ParseUpdate recognizes an update statement. ok reports whether src
// *is* one (by leading keyword); err reports whether it parses. A
// false ok means "not an update — treat as a query".
func ParseUpdate(src string) (*Update, bool, error) {
	trimmed := strings.TrimSpace(src)
	lower := strings.ToLower(trimmed)
	switch {
	case strings.HasPrefix(lower, "delete "):
		qsrc := strings.TrimSpace(trimmed[len("delete "):])
		q, err := xquery.Parse(qsrc)
		if err != nil {
			return nil, true, fmt.Errorf("%w: delete: %v", ErrBadQuery, err)
		}
		return &Update{Kind: "delete", Query: q}, true, nil
	case strings.HasPrefix(lower, "replace "):
		rest := trimmed[len("replace "):]
		upd, err := parseReplace(rest)
		return upd, true, err
	default:
		return nil, false, nil
	}
}

// parseReplace splits `<path query> with <xml>` at a case-insensitive
// " with " separator. The keyword may legitimately appear inside the
// query (a string literal like [note="born with luck"]), so every
// candidate split is tried in order and the first whose halves both
// parse — query on the left, XML on the right — wins.
func parseReplace(rest string) (*Update, error) {
	low := strings.ToLower(rest)
	var firstErr error
	for at := 0; ; {
		i := strings.Index(low[at:], " with ")
		if i < 0 {
			break
		}
		i += at
		at = i + 1
		qsrc := rest[:i]
		xml := strings.TrimSpace(rest[i+len(" with "):])
		if strings.TrimSpace(qsrc) == "" || xml == "" {
			continue
		}
		q, err := xquery.Parse(qsrc)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: replace: %v", ErrBadQuery, err)
			}
			continue
		}
		tree, err := xmltree.Parse(xml)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: replace payload: %v", ErrBadQuery, err)
			}
			continue
		}
		return &Update{Kind: "replace", Query: q, With: tree}, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("%w: replace requires '<path query> with <xml>'", ErrBadQuery)
}

// ApplyUpdate executes an update against one peer's store and returns
// the number of nodes touched. Selected nodes that vanish because an
// earlier removal/replacement took an ancestor with them are skipped,
// matching the wire protocol's DELETE/REPLACE semantics.
func ApplyUpdate(p *peer.Peer, u *Update) (int, error) {
	ids, err := p.SelectIDs(u.Query)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		if _, ok := p.NodeByID(id); !ok {
			continue
		}
		switch u.Kind {
		case "delete":
			if err := p.RemoveChildByID(0, id); err != nil {
				return n, fmt.Errorf("after %d removal(s): %w", n, err)
			}
		case "replace":
			if err := p.ReplaceChildByID(0, id, xmltree.DeepCopy(u.With)); err != nil {
				return n, fmt.Errorf("after %d replacement(s): %w", n, err)
			}
		default:
			return n, fmt.Errorf("session: unknown update kind %q", u.Kind)
		}
		n++
	}
	return n, nil
}
