package session

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/view"
	"axml/internal/xmltree"
)

// streamSystem hosts "outer" at the client and "inner" at data: a
// query whose return expression reads doc("inner") pays one network
// fetch per row, which makes the evaluator's progress observable from
// the network counters.
func streamSystem(t *testing.T, items int) (*core.System, *view.Manager) {
	t.Helper()
	net := netsim.New()
	sys := core.NewSystem(net)
	client := sys.MustAddPeer("client")
	data := sys.MustAddPeer("data")
	outer := xmltree.E("outer")
	for i := 0; i < items; i++ {
		outer.AppendChild(xmltree.MustParse(fmt.Sprintf(`<item><n>%d</n></item>`, i)))
	}
	if err := client.InstallDocument("outer", outer); err != nil {
		t.Fatal(err)
	}
	if err := data.InstallDocument("inner", xmltree.MustParse(`<inner><x>1</x></inner>`)); err != nil {
		t.Fatal(err)
	}
	views := view.NewManager(sys)
	t.Cleanup(views.Close)
	t.Cleanup(sys.Close)
	return sys, views
}

const perRowFetchQ = `for $i in doc("outer")/item return <r>{$i/n}{doc("inner")/x}</r>`

// TestRowsCloseAbandonsEvaluation: Rows.Close after N rows stops the
// evaluator — the per-row network fetches stop with it, instead of
// running to the end of the result as a drain would.
func TestRowsCloseAbandonsEvaluation(t *testing.T) {
	const items = 50
	sys, views := streamSystem(t, items)
	sess := newSession(t, sys, views)

	// Baseline: a full drain fetches the inner doc once per row.
	rows, err := sess.Query(context.Background(), perRowFetchQ, WithNoOptimize())
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != items {
		t.Fatalf("rows = %d", len(forest))
	}
	fullMsgs := sys.Net.Stats().Messages
	if fullMsgs == 0 {
		t.Fatal("expected per-row fetch traffic")
	}

	rows, err = sess.Query(context.Background(), perRowFetchQ, WithNoOptimize())
	if err != nil {
		t.Fatal(err)
	}
	const read = 3
	for i := 0; i < read; i++ {
		if !rows.Next() {
			t.Fatalf("row %d: stream ended early: %v", i, rows.Err())
		}
	}
	before := sys.Net.Stats().Messages
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	after := sys.Net.Stats().Messages
	if after != before {
		t.Errorf("Close kept evaluating: %d messages during Close", after-before)
	}
	// Reading ~3 of 50 rows must cost a small fraction of the full
	// drain's traffic (first row is pulled eagerly at Query time, so
	// allow read+1 fetches).
	partial := after - fullMsgs
	perRow := fullMsgs / items // upper bound on per-row message count
	if partial > int64(read+1)*perRow {
		t.Errorf("partial read cost %d messages, full drain %d — not lazy", partial, fullMsgs)
	}
	if rows.Next() {
		t.Error("Next after Close should be false")
	}
	if err := rows.Err(); err != nil {
		t.Errorf("abandoned rows report error: %v", err)
	}

	// The session survives an abandoned stream.
	n, err := sess.Exec(context.Background(), `doc("outer")/item`)
	if err != nil || n != items {
		t.Fatalf("session after abandon: n=%d err=%v", n, err)
	}
}

// TestCancelMidStream: canceling the call context between pulls stops
// the stream with ErrCanceled.
func TestCancelMidStream(t *testing.T) {
	sys, views := streamSystem(t, 50)
	sess := newSession(t, sys, views)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := sess.Query(ctx, perRowFetchQ, WithNoOptimize())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("row %d: %v", i, rows.Err())
		}
	}
	before := sys.Net.Stats().Messages
	cancel()
	for rows.Next() {
		// at most one buffered row (the eagerly-pulled first row has
		// long been consumed); the stream must fail promptly
	}
	if err := rows.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err after cancel = %v, want ErrCanceled", err)
	}
	if after := sys.Net.Stats().Messages; after != before {
		t.Errorf("evaluation continued after cancel: %d messages", after-before)
	}
	_ = rows.Close()
}

// TestEagerEvalOptionEquivalence: WithEagerEval produces the same rows
// as the default cursor path.
func TestEagerEvalOptionEquivalence(t *testing.T) {
	sys, views := streamSystem(t, 10)
	sess := newSession(t, sys, views)
	lazy, err := sess.Query(context.Background(), perRowFetchQ, WithNoOptimize())
	if err != nil {
		t.Fatal(err)
	}
	lf, err := lazy.Collect()
	if err != nil {
		t.Fatal(err)
	}
	eager, err := sess.Query(context.Background(), perRowFetchQ, WithNoOptimize(), WithEagerEval())
	if err != nil {
		t.Fatal(err)
	}
	ef, err := eager.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(lf) != len(ef) {
		t.Fatalf("cursor %d rows vs eager %d", len(lf), len(ef))
	}
	for i := range lf {
		if xmltree.Serialize(lf[i]) != xmltree.Serialize(ef[i]) {
			t.Errorf("row %d differs", i)
		}
	}
}

// TestPlanCacheLRUEviction: among equal-benefit shapes the cache cap
// evicts least-recently-used first (the cost-weighted policy falls
// back to LRU on score ties); touching a shape keeps it warm. See
// TestPlanCacheCostWeightedEviction for the benefit-driven case.
func TestPlanCacheLRUEviction(t *testing.T) {
	sys, views := testSystem(t)
	sess, err := NewLocal(sys, views, "client", WithPlanCacheSize(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	shape := func(i int) string {
		return fmt.Sprintf(`for $i in doc("catalog")/item where $i/price < %d return $i/name`, 10+i)
	}
	run := func(i int) {
		t.Helper()
		rows, err := sess.Query(ctx, shape(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rows.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		run(i)
	}
	if got := sess.PlanCacheLen(); got != 4 {
		t.Fatalf("cache len = %d", got)
	}
	run(0) // keep shape 0 warm: LRU order is now 0,3,2,1
	run(4) // evicts shape 1
	run(5) // evicts shape 2
	st := sess.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if got := sess.PlanCacheLen(); got != 4 {
		t.Errorf("cache len = %d, want 4", got)
	}
	hitsBefore := sess.Stats().Hits
	run(0) // still cached
	if got := sess.Stats().Hits; got != hitsBefore+1 {
		t.Errorf("warm shape missed: hits %d → %d", hitsBefore, got)
	}
	missesBefore := sess.Stats().Misses
	run(1) // was evicted → re-plans
	if got := sess.Stats().Misses; got != missesBefore+1 {
		t.Errorf("evicted shape should miss: misses %d → %d", missesBefore, got)
	}
}

// TestPlanCacheDefaultCap: an un-optioned session uses the default cap
// and never grows beyond it.
func TestPlanCacheDefaultCap(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	ctx := context.Background()
	for i := 0; i < DefaultPlanCacheSize+20; i++ {
		src := fmt.Sprintf(`for $i in doc("catalog")/item where $i/price < %d return $i/name`, 1000+i)
		rows, err := sess.Query(ctx, src, WithMaxPlans(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sess.PlanCacheLen(); got != DefaultPlanCacheSize {
		t.Errorf("cache len = %d, want %d", got, DefaultPlanCacheSize)
	}
	if st := sess.Stats(); st.Evictions != 20 {
		t.Errorf("evictions = %d, want 20", st.Evictions)
	}
}
