package session

import (
	"context"
	"testing"

	"axml/internal/xmltree"
)

// TestSnapshotIsolationFreezesStream pins a statement to one epoch:
// rows keep coming from the pre-mutation store even though a writer
// commits mid-stream, and the pin is dropped when the stream ends.
func TestSnapshotIsolationFreezesStream(t *testing.T) {
	sys, views := testSystem(t)
	sess, err := NewLocal(sys, views, "data")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := sys.Peer("data")
	d, _ := data.Document("catalog")
	rootID := d.Root.ID
	before := len(d.Root.Children)

	rows, err := sess.Query(context.Background(),
		`for $i in doc("catalog")/item return $i/name`, WithSnapshotIsolation())
	if err != nil {
		t.Fatal(err)
	}
	if got := data.PinnedEpochs(); got != 1 {
		t.Errorf("PinnedEpochs with open snapshot stream = %d, want 1", got)
	}

	// Commit while the stream is open: the pinned epoch must not see it.
	if err := data.AddChild(rootID, xmltree.MustParse(
		`<item><name>late</name><price>1</price></item>`)); err != nil {
		t.Fatal(err)
	}

	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != before {
		t.Errorf("snapshot stream yielded %d rows, want %d (pre-mutation)", len(forest), before)
	}
	for _, n := range forest {
		if n.TextContent() == "late" {
			t.Error("snapshot stream leaked a row committed after the pin")
		}
	}
	if got := data.PinnedEpochs(); got != 0 {
		t.Errorf("PinnedEpochs after stream drained = %d, want 0", got)
	}

	// The next statement sees the new epoch.
	rows2, err := sess.Query(context.Background(),
		`for $i in doc("catalog")/item return $i/name`, WithSnapshotIsolation())
	if err != nil {
		t.Fatal(err)
	}
	forest2, err := rows2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest2) != before+1 {
		t.Errorf("post-mutation stream yielded %d rows, want %d", len(forest2), before+1)
	}
}

// TestSnapshotIsolationReleasesOnClose checks the abandoned-stream
// path: closing Rows mid-stream drops the epoch pin.
func TestSnapshotIsolationReleasesOnClose(t *testing.T) {
	sys, views := testSystem(t)
	sess, err := NewLocal(sys, views, "data")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := sys.Peer("data")

	rows, err := sess.Query(context.Background(),
		`for $i in doc("catalog")/item return $i`, WithSnapshotIsolation())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if got := data.PinnedEpochs(); got != 1 {
		t.Errorf("PinnedEpochs mid-stream = %d, want 1", got)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := data.PinnedEpochs(); got != 0 {
		t.Errorf("PinnedEpochs after Close = %d, want 0", got)
	}
}

// TestSnapshotIsolationEagerPath covers the Eager override: the whole
// forest materializes under the pin, and the pin is gone by the time
// Query returns the materialized rows.
func TestSnapshotIsolationEagerPath(t *testing.T) {
	sys, views := testSystem(t)
	sess, err := NewLocal(sys, views, "data")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := sys.Peer("data")

	rows, err := sess.Query(context.Background(), selectQ,
		WithSnapshotIsolation(), WithEagerEval())
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) == 0 {
		t.Error("eager snapshot query returned no rows")
	}
	if got := data.PinnedEpochs(); got != 0 {
		t.Errorf("PinnedEpochs after eager snapshot query = %d, want 0", got)
	}
}
