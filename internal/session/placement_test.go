package session

// Tests for the session ↔ adaptive-placement seams: the traffic sink,
// the typed ErrViewMoved surfaced when a placement moves under an open
// cursor, cost-weighted plan-cache eviction, and catalog-generation
// invalidation across migrations (including a -race variant with
// concurrent queries during moves).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/view"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// moveSystem builds client+spare+data peers with a catalog at data, so
// views have somewhere to migrate.
func moveSystem(t *testing.T) (*core.System, *view.Manager) {
	t.Helper()
	net := netsim.New()
	sys := core.NewSystem(net)
	sys.MustAddPeer("client")
	sys.MustAddPeer("spare")
	data := sys.MustAddPeer("data")
	cat := xmltree.E("catalog")
	for i := 0; i < 40; i++ {
		price := "500"
		if i%10 == 0 {
			price = "5"
		}
		cat.AppendChild(xmltree.MustParse(fmt.Sprintf(
			`<item><name>thing-%d</name><price>%s</price></item>`, i, price)))
	}
	if err := data.InstallDocument("catalog", cat); err != nil {
		t.Fatal(err)
	}
	views := view.NewManager(sys)
	t.Cleanup(views.Close)
	t.Cleanup(sys.Close)
	return sys, views
}

const viewSrc = `for $i in doc("catalog")/item where $i/price < 100 return $i`

func forestCounts(forest []*xmltree.Node) map[xmltree.Digest]int {
	out := map[xmltree.Digest]int{}
	for _, n := range forest {
		out[xmltree.Hash(n)]++
	}
	return out
}

func equalCounts(a, b map[xmltree.Digest]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// recordingSink captures ObserveQuery calls.
type recordingSink struct {
	mu    sync.Mutex
	calls []struct {
		at    netsim.PeerID
		shape string
		docs  []string
	}
}

func (r *recordingSink) ObserveQuery(at netsim.PeerID, shape string, docs []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, struct {
		at    netsim.PeerID
		shape string
		docs  []string
	}{at, shape, docs})
}

// TestTrafficSinkObservesViewReads: every execution reports the
// evaluating peer, the shape key and the docs of the chosen plan —
// including the view document after a rewrite.
func TestTrafficSinkObservesViewReads(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "client"); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	sess, err := NewLocal(sys, views, "client", WithTrafficSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.calls) != 1 {
		t.Fatalf("sink calls = %d, want 1", len(sink.calls))
	}
	call := sink.calls[0]
	if call.at != "client" || call.shape == "" {
		t.Errorf("observed at=%s shape=%q", call.at, call.shape)
	}
	found := false
	for _, d := range call.docs {
		if d == view.DocPrefix+"cheap" {
			found = true
		}
	}
	if !found {
		t.Errorf("plan docs %v do not include the view read", call.docs)
	}
}

// TestErrViewMovedMidStream: a cursor over a view whose placement
// migrates away fails with the typed error, not an opaque one.
func TestErrViewMovedMidStream(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "client"); err != nil {
		t.Fatal(err)
	}
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := views.Migrate(context.Background(), "cheap", "client", "spare"); err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrViewMoved) {
		t.Fatalf("stream error = %v, want ErrViewMoved", err)
	}
	_ = rows.Close()

	// A fresh call re-plans against the new placement and succeeds.
	rows, err = sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 4 {
		t.Errorf("re-planned query returned %d rows, want 4", len(forest))
	}
}

// TestErrViewMovedOnDrop: dropping the view mid-stream surfaces the
// same typed error.
func TestErrViewMovedOnDrop(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "client"); err != nil {
		t.Fatal(err)
	}
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if err := views.Drop("cheap"); err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrViewMoved) {
		t.Fatalf("stream error = %v, want ErrViewMoved", err)
	}
}

// TestUnrelatedCatalogChangeKeepsStreaming: defining a different view
// mid-stream bumps the generation but must not kill the stream.
func TestUnrelatedCatalogChangeKeepsStreaming(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "client"); err != nil {
		t.Fatal(err)
	}
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := views.Define("other",
		`for $i in doc("catalog")/item where $i/price < 600 return $i/price`, "spare"); err != nil {
		t.Fatal(err)
	}
	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 4 {
		t.Errorf("rows = %d, want 4", len(forest))
	}
}

// TestReplicationKeepsStreaming: adding a replica of the very view a
// cursor reads is additive — the copy being read still exists, so the
// stream must finish, not die with ErrViewMoved.
func TestReplicationKeepsStreaming(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "client"); err != nil {
		t.Fatal(err)
	}
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	if err := views.AddPlacement("cheap", "spare"); err != nil {
		t.Fatal(err)
	}
	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 4 {
		t.Errorf("rows = %d, want 4", len(forest))
	}
}

// TestPlanCacheCostWeightedEviction: under cache pressure the victim
// is the plan the optimizer could not improve, not the oldest one. A
// high-benefit plan (remote selective query, big delegation win) must
// survive a newer zero-benefit plan (local document read).
func TestPlanCacheCostWeightedEviction(t *testing.T) {
	sys, views := moveSystem(t)
	client, _ := sys.Peer("client")
	if err := client.InstallDocument("local", xmltree.MustParse(`<x><y>1</y><z>2</z></x>`)); err != nil {
		t.Fatal(err)
	}
	sess, err := NewLocal(sys, views, "client", WithPlanCacheSize(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(src string) {
		t.Helper()
		rows, err := sess.Query(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rows.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	remote := selectQ // remote catalog, selective: delegation saves a lot
	localA := `doc("local")/y`
	localB := `doc("local")/z`
	run(remote) // oldest entry, high benefit
	run(localA) // newer, zero benefit
	run(localB) // insertion forces one eviction
	if st := sess.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	hits := sess.Stats().Hits
	run(remote) // must still be cached despite being least-recently-used
	if got := sess.Stats().Hits; got != hits+1 {
		t.Errorf("high-benefit plan was evicted: hits %d → %d", hits, got)
	}
	misses := sess.Stats().Misses
	run(localA) // the zero-benefit entry was the victim
	if got := sess.Stats().Misses; got != misses+1 {
		t.Errorf("zero-benefit plan survived: misses %d → %d", misses, got)
	}
}

// TestMigrationInvalidatesCachedPlans: a cached plan that read a
// migrated view re-plans on next use and returns the identical
// multiset.
func TestMigrationInvalidatesCachedPlans(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "spare"); err != nil {
		t.Fatal(err)
	}
	sess := newSession(t, sys, views)
	ctx := context.Background()
	collect := func() map[xmltree.Digest]int {
		t.Helper()
		rows, err := sess.Query(ctx, selectQ)
		if err != nil {
			t.Fatal(err)
		}
		forest, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return forestCounts(forest)
	}
	before := collect()
	collect() // second call hits the cache
	st := sess.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats before migration = %+v", st)
	}
	if err := views.Migrate(ctx, "cheap", "spare", "client"); err != nil {
		t.Fatal(err)
	}
	after := collect()
	st = sess.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (re-plan after the move)", st.Misses)
	}
	if !equalCounts(before, after) {
		t.Error("result multiset changed across the migration")
	}
}

// TestConcurrentQueriesDuringMoveRace hammers a migrating view with
// concurrent queries: every query must either succeed with the exact
// ground-truth multiset or fail with the typed ErrViewMoved — never an
// opaque error, never silently wrong rows.
func TestConcurrentQueriesDuringMoveRace(t *testing.T) {
	sys, views := moveSystem(t)
	if err := views.Define("cheap", viewSrc, "spare"); err != nil {
		t.Fatal(err)
	}
	data, _ := sys.Peer("data")
	truthForest, err := data.RunQuery(xquery.MustParse(selectQ))
	if err != nil {
		t.Fatal(err)
	}
	truth := forestCounts(truthForest)

	sess := newSession(t, sys, views)
	ctx := context.Background()
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rows, err := sess.Query(ctx, selectQ)
				if err != nil {
					if !errors.Is(err, ErrViewMoved) {
						errCh <- fmt.Errorf("query error: %w", err)
						return
					}
					continue
				}
				forest, err := rows.Collect()
				if err != nil {
					if !errors.Is(err, ErrViewMoved) {
						errCh <- fmt.Errorf("stream error: %w", err)
						return
					}
					continue
				}
				if !equalCounts(truth, forestCounts(forest)) {
					errCh <- fmt.Errorf("wrong multiset: %d rows", len(forest))
					return
				}
			}
		}()
	}
	ping, pong := netsim.PeerID("spare"), netsim.PeerID("data")
	for i := 0; i < 8; i++ {
		if err := views.Migrate(ctx, "cheap", ping, pong); err != nil {
			t.Fatal(err)
		}
		ping, pong = pong, ping
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
