package session

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/service"
	"axml/internal/view"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// testSystem builds client+data peers with a small catalog at data.
func testSystem(t *testing.T) (*core.System, *view.Manager) {
	t.Helper()
	net := netsim.New()
	sys := core.NewSystem(net)
	sys.MustAddPeer("client")
	data := sys.MustAddPeer("data")
	cat := xmltree.E("catalog")
	for i := 0; i < 40; i++ {
		price := "500"
		if i%10 == 0 {
			price = "5"
		}
		cat.AppendChild(xmltree.MustParse(fmt.Sprintf(
			`<item><name>thing-%d</name><price>%s</price></item>`, i, price)))
	}
	if err := data.InstallDocument("catalog", cat); err != nil {
		t.Fatal(err)
	}
	views := view.NewManager(sys)
	t.Cleanup(views.Close)
	t.Cleanup(sys.Close)
	return sys, views
}

func newSession(t *testing.T, sys *core.System, views *view.Manager) *Local {
	t.Helper()
	sess, err := NewLocal(sys, views, "client")
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

const selectQ = `for $i in doc("catalog")/item where $i/price < 100 return $i/name`

func TestQueryStreamsRows(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		var node *xmltree.Node
		if err := rows.Scan(&node); err != nil {
			t.Fatal(err)
		}
		if node.Label != "name" {
			t.Errorf("row = %s", s)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("streamed %d rows, want 4", n)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRowsAllIterator(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for node, err := range rows.All() {
		if err != nil {
			t.Fatal(err)
		}
		if node.Label != "name" {
			t.Errorf("unexpected row %s", xmltree.Serialize(node))
		}
		n++
	}
	if n != 4 {
		t.Errorf("iterated %d rows, want 4", n)
	}
}

func TestPlanCacheHitMissInvalidate(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		rows, err := sess.Query(ctx, selectQ)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rows.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("after 3 identical queries: %+v, want 1 miss / 2 hits", st)
	}

	// Conjunct order and whitespace do not fragment the cache.
	variant := "for $i in doc(\"catalog\")/item\n  where $i/price < 100\n  return $i/name"
	if rows, err := sess.Query(ctx, variant); err != nil {
		t.Fatal(err)
	} else {
		_, _ = rows.Collect()
	}
	if st = sess.Stats(); st.Hits != 3 {
		t.Errorf("reformatted query should hit the cache: %+v", st)
	}

	// DefineView bumps the catalog generation: the cached plan is
	// stale (it misses the new view) and must re-optimize.
	if err := views.Define("cheap",
		`for $i in doc("catalog")/item where $i/price < 100 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(ctx, selectQ)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Invalidations != 1 || st.Misses != 2 {
		t.Errorf("DefineView should invalidate the cached plan: %+v", st)
	}
	if len(forest) != 4 {
		t.Errorf("re-planned query returned %d rows", len(forest))
	}
}

func TestPreparedStatementSkipsSearch(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	ctx := context.Background()
	stmt, err := sess.Prepare(ctx, selectQ)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if st := sess.Stats(); st.Misses != 1 {
		t.Fatalf("Prepare should optimize eagerly: %+v", st)
	}
	for i := 0; i < 5; i++ {
		rows, err := stmt.Query(ctx)
		if err != nil {
			t.Fatal(err)
		}
		forest, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(forest) != 4 {
			t.Errorf("run %d: %d rows", i, len(forest))
		}
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Hits != 5 {
		t.Errorf("prepared runs should skip the optimizer: %+v", st)
	}
	if rate := st.HitRate(); rate < 0.8 {
		t.Errorf("hit rate = %.2f", rate)
	}
}

func TestExpiredContextNoRemoteShips(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the call
	rows, err := sess.Query(ctx, selectQ)
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("expired context: err = %v, want ErrCanceled", err)
	}
	// No remote work started: the data peer saw no traffic.
	st := sys.Net.Stats()
	if st.Messages != 0 {
		t.Errorf("expired context still shipped %d message(s)", st.Messages)
	}
}

// TestCancelMidEvalDelegated cancels the context from inside the plan:
// the first argument of a query is a local builtin service call that
// cancels; the second delegates eval@data. The delegation must not
// happen.
func TestCancelMidEvalDelegated(t *testing.T) {
	sys, _ := testSystem(t)
	client, _ := sys.Peer("client")
	ctx, cancel := context.WithCancel(context.Background())
	if err := client.RegisterService(&service.Service{
		Name: "trip", Provider: "client",
		Builtin: func([][]*xmltree.Node) ([]*xmltree.Node, error) {
			cancel()
			return []*xmltree.Node{xmltree.E("tripped")}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Naive plan, evaluated left to right: trip() cancels, then the
	// delegated eval@data must refuse to ship.
	e := &core.Query{
		Q:  mustQuery(t, `param $a, $b; <r/>`),
		At: "client",
		Args: []core.Expr{
			&core.ServiceCall{Provider: "client", Service: "trip"},
			&core.EvalAt{At: "data", E: &core.Query{
				Q: mustQuery(t, selectQ), At: "data"}},
		},
	}
	_, err := sys.EvalContext(ctx, "client", e)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("mid-plan cancel: err = %v, want ErrCanceled", err)
	}
	st := sys.Net.Stats()
	if link, ok := st.PerLink["client"]; ok {
		if ls, ok := link["data"]; ok && ls.Messages > 0 {
			t.Errorf("delegation to data completed despite cancel: %+v", ls)
		}
	}
}

// TestCancelMidTransferSlowLink uses realtime mode: the transfer of
// the delegated evaluation takes real wall-clock time and the deadline
// expires while the bytes are in flight.
func TestCancelMidTransferSlowLink(t *testing.T) {
	sys, views := testSystem(t)
	// ~1 virtual ms sleeps 1 real ms; the catalog reply is thousands of
	// bytes over a 1 byte/ms link — far beyond the 30ms deadline.
	sys.Net.SetLinkBoth("client", "data", netsim.Link{LatencyMs: 5, BytesPerMs: 1})
	sys.Net.SetRealtime(1)
	sess := newSession(t, sys, views)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	rows, err := sess.Query(ctx, selectQ, WithNoOptimize())
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("slow link: err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v — deadline did not interrupt the transfer", elapsed)
	}
}

func TestTypedErrors(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	ctx := context.Background()

	_, err := sess.Query(ctx, `for $i in doc("ghost")/x return $i`)
	if !errors.Is(err, ErrNoSuchDoc) {
		t.Errorf("missing doc: %v, want ErrNoSuchDoc", err)
	}
	if _, err = sess.Query(ctx, `this is ! not a query`); !errors.Is(err, ErrBadQuery) {
		t.Errorf("parse failure: %v, want ErrBadQuery", err)
	}
	sys.Net.SetDown("data", true)
	_, err = sess.Query(ctx, selectQ, WithNoOptimize(), WithNoPlanCache())
	if !errors.Is(err, ErrPeerDown) {
		t.Errorf("down peer: %v, want ErrPeerDown", err)
	}
	sys.Net.SetDown("data", false)
}

func TestWithTimeoutOption(t *testing.T) {
	sys, views := testSystem(t)
	sys.Net.SetLinkBoth("client", "data", netsim.Link{LatencyMs: 5, BytesPerMs: 1})
	sys.Net.SetRealtime(1)
	sess := newSession(t, sys, views)
	rows, err := sess.Query(context.Background(), selectQ, WithNoOptimize(), WithTimeout(30*time.Millisecond))
	if err == nil {
		_, err = rows.Collect()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("WithTimeout: err = %v, want ErrCanceled", err)
	}
}

func TestExecUpdateStatements(t *testing.T) {
	sys, views := testSystem(t)
	data, _ := sys.Peer("data")
	// Exec applies to documents hosted at the session peer.
	sess, err := NewLocal(sys, views, "data")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n, err := sess.Exec(ctx, `delete doc("catalog")/item[price > 100]`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 36 {
		t.Errorf("deleted %d, want 36", n)
	}
	n, err = sess.Exec(ctx, `replace doc("catalog")/item[price < 100] with <item><name>x</name><price>1</price></item>`)
	if err != nil || n != 4 {
		t.Fatalf("replace = %d, %v", n, err)
	}
	doc, _ := data.Document("catalog")
	if len(doc.Root.Children) != 4 {
		t.Errorf("catalog has %d items", len(doc.Root.Children))
	}
	// Query statements run through the pipeline, results discarded.
	n, err = sess.Exec(ctx, `doc("catalog")/item/name`)
	if err != nil || n != 4 {
		t.Errorf("query exec = %d, %v", n, err)
	}
	// Malformed update statements are bad queries, not silent queries.
	if _, err := sess.Exec(ctx, `replace doc("catalog")/item`); !errors.Is(err, ErrBadQuery) {
		t.Errorf("replace without with: %v", err)
	}
}

// TestExecLocationTransparent: an update issued from a session whose
// peer does not host the document applies at the hosting peer, exactly
// as Query is location-transparent (the README quick-start scenario).
func TestExecLocationTransparent(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views) // at "client"; catalog lives at "data"
	n, err := sess.Exec(context.Background(), `delete doc("catalog")/item[price > 100]`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 36 {
		t.Errorf("deleted %d, want 36", n)
	}
	data, _ := sys.Peer("data")
	doc, _ := data.Document("catalog")
	if len(doc.Root.ChildElementsByLabel("item")) != 4 {
		t.Errorf("update did not reach the hosting peer")
	}
	if _, err := sess.Exec(context.Background(), `delete doc("ghost")/x`); !errors.Is(err, ErrNoSuchDoc) {
		t.Errorf("unhosted doc: %v, want ErrNoSuchDoc", err)
	}
}

// TestParseReplaceWithKeywordInLiteral: the " with " separator may
// also appear inside a query string literal; the parser must find the
// split where both halves parse.
func TestParseReplaceWithKeywordInLiteral(t *testing.T) {
	upd, ok, err := ParseUpdate(
		`replace doc("d")/item[note = "born with luck"] with <item><note>plain</note></item>`)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if upd.Kind != "replace" || upd.With.Label != "item" {
		t.Errorf("update = %+v", upd)
	}
	if got := upd.Query.String(); !errorsContains(got, "born with luck") {
		t.Errorf("literal mangled: %s", got)
	}
	// Uppercase separator (the wire REPLACE verb) also parses.
	if _, ok, err := ParseUpdate(`replace doc("d")/item WITH <x/>`); !ok || err != nil {
		t.Errorf("uppercase WITH: ok=%v err=%v", ok, err)
	}
}

func errorsContains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestConsistentViewOption(t *testing.T) {
	sys, views := testSystem(t)
	if err := views.Define("cheap",
		`for $i in doc("catalog")/item where $i/price < 100 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	sess := newSession(t, sys, views)
	ctx := context.Background()
	rows, err := sess.Query(ctx, selectQ)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := rows.Collect()

	data, _ := sys.Peer("data")
	doc, _ := data.Document("catalog")
	if err := data.AddChild(doc.Root.ID,
		xmltree.MustParse(`<item><name>late</name><price>2</price></item>`)); err != nil {
		t.Fatal(err)
	}
	rows, err = sess.Query(ctx, selectQ, WithConsistentView())
	if err != nil {
		t.Fatal(err)
	}
	after, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Errorf("consistent read missed the update: %d vs %d rows", len(after), len(before))
	}
}

func TestSessionClose(t *testing.T) {
	sys, views := testSystem(t)
	sess := newSession(t, sys, views)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(context.Background(), selectQ); !errors.Is(err, ErrClosed) {
		t.Errorf("query after close: %v", err)
	}
}

func mustQuery(t *testing.T, src string) *xquery.Query {
	t.Helper()
	q, err := parseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
