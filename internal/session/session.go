// Package session is the unified client-facing query pipeline of the
// framework: one handle — obtained from a local system (axml.Session)
// or from a wire connection (wire.Dial) — that parses, optimizes
// (view-aware), caches plans and evaluates, with context propagation
// all the way into remote work.
//
// The paper's client model (§2.1) is a single declarative entrypoint
// that hides placement, optimization and transport; DXQ and ViP2P make
// the same point for their network interfaces. Before this package the
// repo exposed the plumbing instead: callers hand-chained ParseQuery →
// Optimize → Eval locally, and spoke a second, incompatible API over
// the wire. Session collapses both into
//
//	sess, _ := sys.Session("client")        // or axml.Dial(addr)
//	rows, err := sess.Query(ctx, `for $i in doc("catalog")/item …`)
//	for rows.Next() { use(rows.Node()) }
//
// Plans are cached per session, keyed by the normalized query shape
// (view.QueryKey — conjunct order and formatting don't fragment the
// cache) and invalidated by view-catalog generation: a DefineView or
// DropView bumps view.Manager.Generation and every older plan
// re-optimizes on next use, so a cached plan can never read a dropped
// view or miss a new one. Prepare pins this pipeline on one statement
// for repeated execution: the optimizer search runs once, not per
// call.
//
// Failures carry kind, not just text: ErrCanceled, ErrNoSuchDoc,
// ErrNoSuchService, ErrPeerDown compare identically (errors.Is) for
// local and remote sessions — the wire protocol transports the error
// code, not just the message.
package session

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/obs"
	"axml/internal/opt"
	"axml/internal/peer"
	"axml/internal/rewrite"
	"axml/internal/view"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// Typed failure kinds, shared by every backend. ErrCanceled &co are
// re-exported from core so that a session layered over a local system
// and one layered over a wire connection agree under errors.Is.
var (
	ErrCanceled      = core.ErrCanceled
	ErrNoSuchDoc     = core.ErrNoSuchDoc
	ErrNoSuchService = core.ErrNoSuchService
	ErrPeerDown      = core.ErrPeerDown

	// ErrBadQuery wraps parse and analysis failures of the submitted
	// source text.
	ErrBadQuery = errors.New("bad query")

	// ErrClosed is returned by operations on a closed session.
	ErrClosed = errors.New("session closed")

	// ErrViewMoved marks a streaming query whose plan read a
	// materialized view that was migrated, replicated away or dropped
	// while the stream was open (adaptive placement moves views at
	// runtime). The stream fails with this typed error instead of an
	// opaque resolution failure or silently stale rows; re-running the
	// query re-plans against the new placement.
	ErrViewMoved = errors.New("view placement changed mid-stream")
)

// Session is the unified query interface over an AXML deployment. A
// local session evaluates against an in-process system; a wire session
// (wire.Dial) against a remote peer — same methods, same option set,
// same error kinds, same streaming Rows.
type Session interface {
	// Query runs one query and streams its result forest.
	Query(ctx context.Context, src string, opts ...Option) (*Rows, error)
	// Exec runs a statement for its effect — `delete <path>`,
	// `replace <path> with <xml>`, or a query whose results are
	// discarded — and reports how many nodes (or result trees) it
	// touched.
	Exec(ctx context.Context, src string, opts ...Option) (int, error)
	// Prepare validates src once and returns a statement handle whose
	// repeated Query calls skip the per-call planning work.
	Prepare(ctx context.Context, src string) (*Stmt, error)
	// Close releases the session. In-flight calls may fail with
	// ErrClosed or ErrCanceled.
	Close() error
}

// Config collects the per-call options. Backends ignore knobs that do
// not apply to them (a wire client cannot disable the remote server's
// optimizer cache, but it forwards the intent).
type Config struct {
	// NoOptimize evaluates the naive definition-(1)–(9) plan without
	// the rewrite search (and without consulting the plan cache).
	NoOptimize bool
	// NoPlanCache forces a fresh optimizer run even for known shapes.
	// The plan is still stored; benchmarks use this as the
	// optimize-every-time baseline.
	NoPlanCache bool
	// ConsistentView refreshes every materialized view the chosen plan
	// reads before evaluating, so the answer reflects the current base
	// data rather than the last refresh.
	ConsistentView bool
	// Timeout, when positive, derives a child context with that
	// deadline around the call.
	Timeout time.Duration
	// MaxPlans caps the optimizer search (0 = the optimizer default).
	MaxPlans int
	// Eager materializes the whole result forest before the first row
	// is handed out, instead of the default pull-based evaluation.
	// Benchmarks use it as the latency baseline; it is also the escape
	// hatch if a workload prefers throughput over first-row latency.
	Eager bool
	// TraceID asks the backend to record a query trace under this ID.
	// A wire client frames it as +trace=<id> so the server builds the
	// span tree on its side (fetch it back with TRACE <id>); local
	// sessions trace through the context instead (obs.WithTrace), which
	// carries the whole trace object, not just an ID.
	TraceID string
	// SnapshotIsolation pins the call to one epoch of the evaluating
	// peer's document store before the first row is produced: every
	// doc("name") the plan resolves at that peer answers from the pinned
	// epoch, so concurrent writers never change (or tear) the stream's
	// view of the data. The pin is dropped when the stream ends. Wire
	// sessions forward the intent as the +snapshot flag and the server
	// pins on its side. Reads at other peers (delegated sub-plans) pin
	// their own per-query snapshots as always — the option widens the
	// pin from per-query to per-statement at the session's home peer.
	SnapshotIsolation bool
	// NoTraffic keeps the call out of the placement demand counters
	// (the session's TrafficSink is not told about it). Federation uses
	// it for forwarded queries: the member that forwarded already
	// recorded the demand where the consumer sits, so the serving
	// deployment must not count the same query a second time — that
	// would attribute the demand to the wrong member and make the
	// coordinator chase its own forwarding traffic. A wire client frames
	// the intent as the +fwd flag.
	NoTraffic bool
}

// Option is a functional option of Session.Query/Exec and Stmt.Query.
type Option func(*Config)

// WithNoOptimize evaluates the query as written: no rewrite search, no
// view rewriting, no plan cache.
func WithNoOptimize() Option { return func(c *Config) { c.NoOptimize = true } }

// WithNoPlanCache re-runs the optimizer even when a cached plan
// exists.
func WithNoPlanCache() Option { return func(c *Config) { c.NoPlanCache = true } }

// WithConsistentView refreshes the views the plan reads before
// answering from them.
func WithConsistentView() Option { return func(c *Config) { c.ConsistentView = true } }

// WithTimeout bounds the call by a deadline relative to its start.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// WithMaxPlans caps the optimizer's plan search for this call.
func WithMaxPlans(n int) Option { return func(c *Config) { c.MaxPlans = n } }

// WithEagerEval evaluates the whole query before the first row is
// returned (the pre-cursor behavior): Rows then streams a materialized
// forest. Use when the consumer will drain everything anyway and wants
// the evaluation done in one burst.
func WithEagerEval() Option { return func(c *Config) { c.Eager = true } }

// WithTraceID asks the backend to trace this call under the given ID
// (wire sessions; local sessions pass a trace in the context via
// obs.WithTrace instead).
func WithTraceID(id string) Option { return func(c *Config) { c.TraceID = id } }

// WithNoTraffic keeps this call out of the placement demand counters.
// Federation forwards queries with it so demand is attributed once, at
// the member where the consumer actually sits.
func WithNoTraffic() Option { return func(c *Config) { c.NoTraffic = true } }

// WithSnapshotIsolation pins the statement to one epoch of the
// session peer's document store: the whole stream reads the documents
// exactly as they were when the call started, no matter what concurrent
// writers publish meanwhile. See Config.SnapshotIsolation.
func WithSnapshotIsolation() Option { return func(c *Config) { c.SnapshotIsolation = true } }

// BuildConfig folds options into a Config. Backends (wire) use it to
// interpret the shared option vocabulary.
func BuildConfig(opts []Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Stats counts plan-cache activity of a local session.
type Stats struct {
	// Hits: calls answered by a cached plan (no optimizer search).
	Hits uint64
	// Misses: calls that ran the optimizer (first sight of a shape, or
	// WithNoPlanCache).
	Misses uint64
	// Invalidations: cached plans discarded because the view catalog
	// changed underneath them.
	Invalidations uint64
	// Evictions: cached plans dropped because the cache reached its
	// size cap. The victim is the entry with the lowest retention
	// score — estimated planning benefit weighted by hit count — with
	// least-recently-used as the tie-break.
	Evictions uint64
}

// HitRate returns the fraction of planned calls served from cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cachedPlan is one plan-cache entry: the normalized shape key, the
// optimized expression, the view-catalog generation it was derived
// under, and the retention weights of the cost-aware eviction policy.
type cachedPlan struct {
	key  string
	expr core.Expr
	gen  uint64
	// benefit is the optimizer's estimated cost saving of this plan
	// over the naive plan (opt.DefaultWeights scalar). A plan that
	// saves nothing is cheap to lose — re-deriving it is one search
	// that converges immediately; a plan whose search found a big win
	// is the one worth keeping under cache pressure.
	benefit float64
	// uses counts cache hits: repeated shapes amortize their search.
	uses uint64
}

// DefaultPlanCacheSize bounds a session's plan cache when no explicit
// WithPlanCacheSize is given. Long-lived server sessions see
// adversarial shape churn (every distinct normalized query is one
// entry); an unbounded map would grow with the lifetime of the
// process.
const DefaultPlanCacheSize = 256

// Local is the Session implementation over an in-process core.System:
// the one query pipeline the facade, the wire server and the bench
// experiments all share.
type Local struct {
	sys     *core.System
	views   *view.Manager
	at      netsim.PeerID
	sink    TrafficSink
	metrics *obs.Registry

	mu      sync.Mutex
	plans   map[string]*list.Element // shape key → element of order
	order   *list.List               // front = most recently used; values are *cachedPlan
	planCap int
	stats   Stats
	closed  bool
}

// TrafficSink receives one notification per executed query. The
// adaptive-placement observer (internal/placement) implements it to
// learn which peers read which documents and views; anything with the
// same method set can tap the stream.
type TrafficSink interface {
	// ObserveQuery reports an execution: the evaluating peer, the
	// normalized query-shape key (view.QueryKey), and the documents the
	// chosen plan reads — view documents carry the "view:" prefix, so
	// view demand is directly attributable.
	ObserveQuery(at netsim.PeerID, shape string, docs []string)
}

// LocalOption configures a Local session at construction time.
type LocalOption func(*Local)

// WithPlanCacheSize caps the session's plan cache at n entries,
// evicting least-recently-used plans beyond it. n <= 0 restores the
// default (DefaultPlanCacheSize).
func WithPlanCacheSize(n int) LocalOption {
	return func(s *Local) {
		if n <= 0 {
			n = DefaultPlanCacheSize
		}
		s.planCap = n
	}
}

// WithTrafficSink attaches a per-query traffic observer to the
// session. Every Query/Exec/Stmt execution reports its evaluating
// peer, shape key and the documents its plan reads; the adaptive-
// placement controller aggregates these into per-view demand.
func WithTrafficSink(sink TrafficSink) LocalOption {
	return func(s *Local) { s.sink = sink }
}

// WithMetrics attaches a metrics registry: the session then mirrors
// its plan-cache counters into session.plan_cache.* and observes
// per-query first-row latency, so a deployment-wide obs.Registry sees
// the same numbers Stats reports.
func WithMetrics(reg *obs.Registry) LocalOption {
	return func(s *Local) { s.metrics = reg }
}

// count bumps a registry counter, when a registry is attached.
func (s *Local) count(name string) {
	if s.metrics != nil {
		s.metrics.Counter(name).Inc()
	}
}

// NewLocal opens a session evaluating at peer `at` of the given
// system. The view manager supplies view-aware optimization and the
// cache-invalidation generation; it may not be nil (pass a fresh
// manager for view-less systems).
func NewLocal(sys *core.System, views *view.Manager, at netsim.PeerID, opts ...LocalOption) (*Local, error) {
	if views == nil {
		return nil, fmt.Errorf("session: nil view manager")
	}
	if _, ok := sys.Peer(at); !ok {
		return nil, fmt.Errorf("session: unknown peer %q", at)
	}
	s := &Local{sys: sys, views: views, at: at,
		plans: map[string]*list.Element{}, order: list.New(),
		planCap: DefaultPlanCacheSize}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// PlanCacheLen reports how many plans the session currently caches.
func (s *Local) PlanCacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.plans)
}

// At returns the peer this session evaluates at.
func (s *Local) At() netsim.PeerID { return s.at }

// Stats returns a snapshot of the plan-cache counters.
//
// Snapshot-consistency contract: the struct is copied in one critical
// section of the session lock — the same lock every counter update
// holds — so the four counters form a consistent cut: Hits + Misses
// is exactly the number of planned calls that reached a verdict at
// snapshot time. All counters are monotone.
func (s *Local) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close marks the session closed and drops its cached plans.
func (s *Local) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.plans = map[string]*list.Element{}
	s.order = list.New()
	return nil
}

func (s *Local) alive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Query implements Session: parse → plan (cached) → open a pull-based
// cursor → stream. Rows.Next drives the evaluation on demand: the
// first rows are available while the rest of the result is still
// unevaluated, and Rows.Close abandons the remaining work. The first
// row is pulled eagerly so that evaluation-setup failures (missing
// documents, dead peers) surface from Query itself.
func (s *Local) Query(ctx context.Context, src string, opts ...Option) (*Rows, error) {
	if err := s.alive(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Checked before planning: an expired context must not pay for
		// (or pollute the counters of) an optimizer search.
		return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	cfg := BuildConfig(opts)
	start := time.Now()
	// The root span of the query's trace (when the context carries
	// one): parse and plan become its first children, every network
	// hop of the evaluation nests below, and the span closes when the
	// stream ends.
	ctx, root := obs.StartSpan(ctx, "query", src)
	s.count("session.queries")

	_, psp := obs.StartSpan(ctx, "parse", "")
	q, err := parseQuery(src)
	if err != nil {
		psp.Fail(err)
		psp.End()
		root.Fail(err)
		root.End()
		return nil, err
	}
	psp.End()

	_, plsp := obs.StartSpan(ctx, "plan", "")
	expr, hit, err := s.plan(q, &cfg)
	if err != nil {
		plsp.Fail(err)
		plsp.End()
		root.Fail(err)
		root.End()
		return nil, err
	}
	if !cfg.NoOptimize {
		if hit {
			plsp.Set("cache", "hit")
		} else {
			plsp.Set("cache", "miss")
		}
	}
	plsp.End()

	if !cfg.NoTraffic {
		s.observe(q, expr)
	}
	rows, err := s.rowsFor(ctx, expr, &cfg)
	if err != nil {
		root.Fail(err)
		root.End()
		return nil, err
	}
	if s.metrics != nil {
		s.metrics.Histogram("session.query.first_row_ms", []float64{0.1, 1, 10, 100, 1000}).
			Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
	return traceRows(rows, root), nil
}

// traceRows ties a query's root span to its result stream: each
// pulled tree counts as a row, the stream's virtual completion time
// becomes the span's EndVT, and the span closes when the stream ends
// (exhaustion, failure, or Close — End is idempotent).
func traceRows(rows *Rows, root *obs.Span) *Rows {
	if root == nil {
		return rows
	}
	pull := rows.pull
	rows.pull = func() (*xmltree.Node, error) {
		n, err := pull()
		switch {
		case err != nil:
			root.Fail(err)
			finishSpan(rows, root)
		case n == nil:
			finishSpan(rows, root)
		default:
			root.AddRows(1)
		}
		return n, err
	}
	closeFn := rows.closeFn
	rows.closeFn = func() error {
		var err error
		if closeFn != nil {
			err = closeFn()
		}
		finishSpan(rows, root)
		return err
	}
	return rows
}

// finishSpan stamps the stream's virtual completion time and ends the
// root span.
func finishSpan(rows *Rows, root *obs.Span) {
	if rows.vtFn != nil {
		root.EndVTAt(rows.vtFn())
	}
	root.End()
}

// observe reports one execution to the traffic sink, if any.
func (s *Local) observe(q *xquery.Query, expr core.Expr) {
	if s.sink == nil {
		return
	}
	s.sink.ObserveQuery(s.at, view.QueryKey(q), planDocs(expr))
}

// rowsFor opens the result stream for a planned expression under the
// call's context rules (timeout, consistent views, eager override,
// snapshot isolation).
func (s *Local) rowsFor(ctx context.Context, expr core.Expr, cfg *Config) (*Rows, error) {
	if cfg.SnapshotIsolation {
		if p, ok := s.sys.Peer(s.at); ok {
			// Pin the session peer's current epoch for the whole stream;
			// prepareQuery finds the handle in the context and resolves
			// local documents from it instead of pinning per query.
			h := p.Snapshot()
			rows, err := s.openRows(core.WithDocSnapshot(ctx, h), expr, cfg)
			if err != nil {
				h.Release()
				return nil, err
			}
			return pinRows(rows, h), nil
		}
	}
	return s.openRows(ctx, expr, cfg)
}

// pinRows ties a snapshot handle's lifetime to a result stream: the
// pin drops when the stream ends — exhaustion, failure, or Close,
// whichever comes first (Release is idempotent).
func pinRows(rows *Rows, h *peer.Handle) *Rows {
	pull := rows.pull
	rows.pull = func() (*xmltree.Node, error) {
		n, err := pull()
		if err != nil || n == nil {
			h.Release()
		}
		return n, err
	}
	closeFn := rows.closeFn
	rows.closeFn = func() error {
		var err error
		if closeFn != nil {
			err = closeFn()
		}
		h.Release()
		return err
	}
	return rows
}

// openRows opens the result stream for a planned expression (timeout,
// consistent views, eager override).
func (s *Local) openRows(ctx context.Context, expr core.Expr, cfg *Config) (*Rows, error) {
	if cfg.Eager {
		res, err := s.run(ctx, expr, cfg)
		if err != nil {
			return nil, err
		}
		rows := FromForest(res.Forest)
		rows.vtFn = func() float64 { return res.VT }
		return rows, nil
	}
	guard := s.viewGuard(expr)
	cancel := func() {}
	if cfg.Timeout > 0 {
		// The deadline spans the whole stream; it is released as soon
		// as the stream ends — exhaustion, error, or Close, whichever
		// comes first — so an un-Closed but drained Rows does not pin
		// the timer for the rest of the timeout.
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	}
	fail := func(err error) (*Rows, error) {
		cancel()
		// A failure while the view catalog moved underneath the call is
		// attributed to the move — the typed error tells the caller to
		// simply re-run, instead of surfacing a transient resolution
		// error from a placement that no longer exists.
		if gerr := guard(); gerr != nil {
			return nil, gerr
		}
		return nil, err
	}
	if cfg.ConsistentView {
		for _, name := range planViews(expr) {
			if _, err := s.views.RefreshContext(ctx, name); err != nil {
				return fail(err)
			}
		}
	}
	cur, err := s.sys.EvalCursorContext(ctx, s.at, expr)
	if err != nil {
		return fail(err)
	}
	first, err := cur.Next()
	if err != nil {
		_ = cur.Close()
		return fail(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			cancel()
		}
	}
	delivered := first == nil
	if delivered {
		release() // empty result: nothing left to bound
	}
	pull := func() (*xmltree.Node, error) {
		if err := guard(); err != nil {
			release()
			return nil, err
		}
		if !delivered {
			delivered = true
			return first, nil
		}
		n, err := cur.Next()
		if err != nil {
			if gerr := guard(); gerr != nil {
				err = gerr
			}
		}
		if err != nil || n == nil {
			release()
		}
		return n, err
	}
	rows := NewCursorRows(pull, func() error {
		err := cur.Close()
		release()
		return err
	})
	rows.vtFn = cur.VT
	return rows, nil
}

// viewGuard builds the mid-stream placement check of a planned
// expression: a cheap generation probe per pull, and only when the
// view catalog actually changed, a check that every placement the
// plan could be reading still exists. The snapshot pins the placement
// set at open time — the stream fails with ErrViewMoved only when one
// of those copies disappeared (migrated away, dropped, evicted), since
// the cursor may be reading exactly that copy. Additive changes — a
// new replica of this view, an unrelated view defined elsewhere —
// keep the stream running.
func (s *Local) viewGuard(expr core.Expr) func() error {
	names := planViews(expr)
	if len(names) == 0 {
		return func() error { return nil }
	}
	gen := s.views.Generation()
	snap := make(map[string][]netsim.PeerID, len(names))
	for _, name := range names {
		if ps, ok := s.views.PlacementsOf(name); ok {
			snap[name] = ps
		}
	}
	return func() error {
		cur := s.views.Generation()
		if cur == gen {
			return nil
		}
		for _, name := range names {
			ps, ok := s.views.PlacementsOf(name)
			if !ok {
				return fmt.Errorf("%w: view %q was dropped", ErrViewMoved, name)
			}
			if !containsAll(ps, snap[name]) {
				return fmt.Errorf("%w: view %q moved", ErrViewMoved, name)
			}
		}
		gen = cur // additive change only: stop deep-checking until the next bump
		return nil
	}
}

// containsAll reports whether every peer of want is present in have
// (both sorted).
func containsAll(have, want []netsim.PeerID) bool {
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
	}
	return true
}

// Exec implements Session. Update statements are location-transparent
// like Query: the target nodes are modified at whichever peer hosts
// the referenced document (the session's own peer preferred).
// Anything else evaluates through the query pipeline with the results
// discarded.
func (s *Local) Exec(ctx context.Context, src string, opts ...Option) (int, error) {
	if err := s.alive(); err != nil {
		return 0, err
	}
	cfg := BuildConfig(opts)
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	if upd, ok, err := ParseUpdate(src); ok {
		if err != nil {
			return 0, err
		}
		p, err := s.updateHost(upd)
		if err != nil {
			return 0, err
		}
		return ApplyUpdate(p, upd)
	}
	rows, err := s.Query(ctx, src, opts...)
	if err != nil {
		return 0, err
	}
	forest, err := rows.Collect()
	if err != nil {
		return 0, err
	}
	return len(forest), nil
}

// planDocs collects the names of every document a plan reads — view
// documents (the "view:" prefix) and base documents alike — by walking
// the expression tree and the document references of its embedded
// queries.
func planDocs(e core.Expr) []string {
	seen := map[string]bool{}
	var names []string
	walkPlanDocs(e, func(doc string) {
		if !seen[doc] {
			seen[doc] = true
			names = append(names, doc)
		}
	})
	return names
}

// updateHost resolves the peer an update statement applies at: the
// session's peer when it hosts the referenced document, else the first
// hosting peer in deterministic order.
func (s *Local) updateHost(upd *Update) (*peer.Peer, error) {
	docs := upd.Query.DocRefs()
	if len(docs) == 0 {
		return nil, fmt.Errorf("%w: update selects no document", ErrBadQuery)
	}
	if p, ok := s.sys.Peer(s.at); ok && p.HasDocument(docs[0]) {
		return p, nil
	}
	ids := s.sys.Peers()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if p, ok := s.sys.Peer(id); ok && p.HasDocument(docs[0]) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("session: %w: %q", ErrNoSuchDoc, docs[0])
}

// Prepare implements Session: the statement is parsed and optimized
// now; each subsequent Stmt.Query reuses the cached plan (re-planning
// only if the view catalog changed in between).
func (s *Local) Prepare(ctx context.Context, src string) (*Stmt, error) {
	if err := s.alive(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	q, err := parseQuery(src)
	if err != nil {
		return nil, err
	}
	// Plan eagerly so the first Query pays nothing extra and syntax or
	// planning errors surface at Prepare time, where they belong.
	warm := Config{}
	if _, _, err := s.plan(q, &warm); err != nil {
		return nil, err
	}
	run := func(ctx context.Context, opts ...Option) (*Rows, error) {
		if err := s.alive(); err != nil {
			return nil, err
		}
		cfg := BuildConfig(opts)
		expr, _, err := s.plan(q, &cfg)
		if err != nil {
			return nil, err
		}
		if !cfg.NoTraffic {
			s.observe(q, expr)
		}
		return s.rowsFor(ctx, expr, &cfg)
	}
	return NewStmt(src, run, nil), nil
}

// plan resolves the expression to evaluate: the naive plan when the
// optimizer is off, else a cached or freshly optimized plan keyed by
// the normalized query shape and the view-catalog generation. The
// second return reports whether the plan came from the cache. An
// optimizer failure while the view catalog changed underneath the
// search (a placement migrating away mid-estimate) is retried once
// against the new catalog before it surfaces.
func (s *Local) plan(q *xquery.Query, cfg *Config) (core.Expr, bool, error) {
	for attempt := 0; ; attempt++ {
		gen := s.views.Generation()
		expr, hit, err := s.planOnce(q, cfg)
		if err == nil || attempt == 1 || s.views.Generation() == gen {
			return expr, hit, err
		}
	}
}

func (s *Local) planOnce(q *xquery.Query, cfg *Config) (core.Expr, bool, error) {
	naive := &core.Query{Q: q, At: s.at}
	if cfg.NoOptimize {
		return naive, false, nil
	}
	key := view.QueryKey(q)
	gen := s.views.Generation()

	s.mu.Lock()
	if elem, ok := s.plans[key]; ok {
		cp := elem.Value.(*cachedPlan)
		if cp.gen != gen {
			s.order.Remove(elem)
			delete(s.plans, key)
			s.stats.Invalidations++
			s.count("session.plan_cache.invalidations")
		} else if !cfg.NoPlanCache {
			s.stats.Hits++
			cp.uses++
			s.order.MoveToFront(elem)
			expr := cp.expr
			s.mu.Unlock()
			s.count("session.plan_cache.hits")
			return expr, true, nil
		}
	}
	s.stats.Misses++
	s.mu.Unlock()
	s.count("session.plan_cache.misses")

	o := opt.Options{
		MaxPlans:   cfg.MaxPlans,
		ExtraRules: []rewrite.Rule{s.views.Rule()},
	}
	plan, _, err := opt.Optimize(s.sys, s.at, naive, o)
	if err != nil {
		return nil, false, err
	}
	// The retention weight of the cost-aware eviction policy: how much
	// the optimizer thinks this plan saves over the naive one.
	benefit := plan.BaseCost - plan.Cost
	if benefit < 0 {
		benefit = 0
	}
	s.mu.Lock()
	s.storePlan(&cachedPlan{key: key, expr: plan.Expr, gen: gen, benefit: benefit})
	s.mu.Unlock()
	return plan.Expr, false, nil
}

// storePlan inserts (or refreshes) a cache entry as most-recently-used
// and evicts entries beyond the cap. Caller holds s.mu.
func (s *Local) storePlan(cp *cachedPlan) {
	if elem, ok := s.plans[cp.key]; ok {
		cp.uses = elem.Value.(*cachedPlan).uses
		elem.Value = cp
		s.order.MoveToFront(elem)
		return
	}
	s.plans[cp.key] = s.order.PushFront(cp)
	for s.order.Len() > s.planCap {
		s.evictOne()
	}
}

// evictOne drops the cached plan with the lowest retention score.
// Pure-LRU eviction treats a plan whose search saved three WAN
// round-trips the same as one the optimizer could not improve; the
// score — estimated benefit weighted by hit count — keeps the
// expensive-to-lose plans and lets the worthless ones churn. Recency
// still matters twice: the most-recently-used entry is never the
// victim, and ties fall to the least-recently-used candidate. Caller
// holds s.mu.
func (s *Local) evictOne() {
	var worst *list.Element
	worstScore := 0.0
	for elem := s.order.Back(); elem != nil && elem != s.order.Front(); elem = elem.Prev() {
		cp := elem.Value.(*cachedPlan)
		score := float64(1+cp.uses) * (cp.benefit + 1)
		if worst == nil || score < worstScore {
			worst, worstScore = elem, score
		}
	}
	if worst == nil {
		worst = s.order.Back()
	}
	s.order.Remove(worst)
	delete(s.plans, worst.Value.(*cachedPlan).key)
	s.stats.Evictions++
	s.count("session.plan_cache.evictions")
}

// run evaluates a planned expression under the call's context rules.
func (s *Local) run(ctx context.Context, e core.Expr, cfg *Config) (*core.Result, error) {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if cfg.ConsistentView {
		for _, name := range planViews(e) {
			if _, err := s.views.RefreshContext(ctx, name); err != nil {
				return nil, err
			}
		}
	}
	return s.sys.EvalContext(ctx, s.at, e)
}

// parseQuery wraps parse failures in ErrBadQuery.
func parseQuery(src string) (*xquery.Query, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return q, nil
}

// planViews collects the names of the materialized views a plan reads.
func planViews(e core.Expr) []string {
	seen := map[string]bool{}
	var names []string
	walkPlanDocs(e, func(doc string) {
		if !strings.HasPrefix(doc, view.DocPrefix) {
			return
		}
		name := strings.TrimPrefix(doc, view.DocPrefix)
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	})
	return names
}

// walkPlanDocs visits every document name a plan reads, walking the
// expression tree and the document references of its embedded queries.
func walkPlanDocs(e core.Expr, note func(doc string)) {
	var walk func(core.Expr)
	walk = func(e core.Expr) {
		switch v := e.(type) {
		case *core.Doc:
			note(v.Name)
		case *core.Query:
			for _, doc := range v.Q.DocRefs() {
				note(doc)
			}
			for _, a := range v.Args {
				walk(a)
			}
		case *core.QueryVal:
			for _, doc := range v.Q.DocRefs() {
				note(doc)
			}
		case *core.EvalAt:
			walk(v.E)
		case *core.Send:
			walk(v.Payload)
		case *core.Relay:
			walk(v.Payload)
		case *core.ServiceCall:
			for _, p := range v.Params {
				walk(p)
			}
		}
	}
	walk(e)
}
