package session

import (
	"context"
	"fmt"
	"iter"

	"axml/internal/xmltree"
)

// Rows streams a query's result forest, one tree at a time. Local
// sessions evaluate lazily: Next pulls the next row out of the
// evaluator on demand and Close abandons the remaining work, so a
// consumer that stops after N rows only ever paid for N rows. Wire
// sessions pull rows off the connection as Next advances (the server
// evaluates and streams incrementally on its side), so large results
// never materialize client-side.
//
// Two consumption styles are supported: the database/sql-style
// Next/Node/Scan loop,
//
//	for rows.Next() { use(rows.Node()) }
//	if err := rows.Err(); err != nil { … }
//
// and range-over-func iteration:
//
//	for n, err := range rows.All() { … }
//
// Close is idempotent and releases the backend (a wire session drains
// the remaining rows so the connection is reusable).
type Rows struct {
	// pull returns the next tree; (nil, nil) signals exhaustion.
	pull    func() (*xmltree.Node, error)
	closeFn func() error
	// abandon marks a backend whose remaining work should be dropped
	// on Close rather than drained (a lazily-evaluating cursor, where
	// draining would force the evaluation Close exists to skip).
	abandon bool
	// vtFn reports the backend's virtual completion time, when the
	// backend has one (local sessions over the simulated network).
	vtFn func() float64

	cur    *xmltree.Node
	err    error
	done   bool
	closed bool
}

// NewRows builds a Rows over a pull function. pull returns (nil, nil)
// when exhausted; closeFn (optional) releases backend resources and
// runs exactly once. Close drains the remaining rows first — the right
// semantics for protocol-backed streams that must reach a terminator.
func NewRows(pull func() (*xmltree.Node, error), closeFn func() error) *Rows {
	return &Rows{pull: pull, closeFn: closeFn}
}

// NewCursorRows builds a Rows over a lazily-evaluating backend: Close
// abandons the remaining work (no drain) and closeFn releases the
// cursor. Rows.Close after N rows means only N rows were ever
// evaluated.
func NewCursorRows(pull func() (*xmltree.Node, error), closeFn func() error) *Rows {
	return &Rows{pull: pull, closeFn: closeFn, abandon: true}
}

// FromForest wraps an in-memory forest as Rows.
func FromForest(forest []*xmltree.Node) *Rows {
	i := 0
	return NewRows(func() (*xmltree.Node, error) {
		if i >= len(forest) {
			return nil, nil
		}
		n := forest[i]
		i++
		return n, nil
	}, nil)
}

// Next advances to the next result tree. It returns false at the end
// of the stream or on error; check Err afterwards.
func (r *Rows) Next() bool {
	if r.done || r.err != nil || r.closed {
		return false
	}
	n, err := r.pull()
	if err != nil {
		r.err = err
		r.done = true
		r.cur = nil
		return false
	}
	if n == nil {
		r.done = true
		r.cur = nil
		return false
	}
	r.cur = n
	return true
}

// Node returns the current result tree (valid after a true Next).
func (r *Rows) Node() *xmltree.Node { return r.cur }

// Scan copies the current row into dest: **xmltree.Node receives the
// tree itself, *string its compact XML serialization.
func (r *Rows) Scan(dest any) error {
	if r.cur == nil {
		return fmt.Errorf("session: Scan called without a current row")
	}
	switch d := dest.(type) {
	case **xmltree.Node:
		*d = r.cur
		return nil
	case *string:
		*d = xmltree.Serialize(r.cur)
		return nil
	default:
		return fmt.Errorf("session: unsupported Scan destination %T", dest)
	}
}

// Err returns the error that terminated iteration, if any. A closed or
// exhausted stream with no failure returns nil.
func (r *Rows) Err() error { return r.err }

// VT returns the virtual completion time of the evaluation in
// simulated milliseconds — the latency metric of the netsim cost
// model. It is final once the stream is exhausted or closed, and zero
// for backends without a virtual clock (wire sessions). Benchmarks use
// it to compare query latency across placements without depending on
// wall-clock noise.
func (r *Rows) VT() float64 {
	if r.vtFn == nil {
		return 0
	}
	return r.vtFn()
}

// Close releases the stream. For wire-backed rows this drains the
// remaining replies so the connection can carry the next request;
// cursor-backed rows (NewCursorRows) instead abandon the remaining
// evaluation.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.abandon {
		r.done = true
		r.cur = nil
		if r.closeFn != nil {
			return r.closeFn()
		}
		return nil
	}
	// Drain so that streaming backends reach their terminator.
	for !r.done && r.err == nil {
		n, err := r.pull()
		if err != nil {
			r.err = err
			break
		}
		if n == nil {
			break
		}
	}
	r.done = true
	r.cur = nil
	if r.closeFn != nil {
		return r.closeFn()
	}
	return nil
}

// All returns a range-over-func iterator over the remaining rows. A
// stream failure is yielded as the final (nil, err) pair; the rows are
// closed when the iterator finishes or the consumer breaks.
func (r *Rows) All() iter.Seq2[*xmltree.Node, error] {
	return func(yield func(*xmltree.Node, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.cur, nil) {
				return
			}
		}
		if err := r.Err(); err != nil {
			yield(nil, err)
		}
	}
}

// Collect drains the stream into a slice (convenience for callers that
// want the whole forest anyway) and closes it.
func (r *Rows) Collect() ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for r.Next() {
		out = append(out, r.cur)
	}
	err := r.Err()
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stmt is a prepared statement: one parsed-and-planned query bound to
// its session, repeatable without per-call planning work. Backends
// construct it via NewStmt with their own run closure.
type Stmt struct {
	src     string
	run     func(ctx context.Context, opts ...Option) (*Rows, error)
	closeFn func() error
	closed  bool
}

// NewStmt builds a statement handle over a backend's run closure.
func NewStmt(src string, run func(ctx context.Context, opts ...Option) (*Rows, error), closeFn func() error) *Stmt {
	return &Stmt{src: src, run: run, closeFn: closeFn}
}

// Source returns the statement's query text.
func (s *Stmt) Source() string { return s.src }

// Query executes the prepared statement.
func (s *Stmt) Query(ctx context.Context, opts ...Option) (*Rows, error) {
	if s.closed {
		return nil, ErrClosed
	}
	return s.run(ctx, opts...)
}

// Close releases the statement.
func (s *Stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.closeFn != nil {
		return s.closeFn()
	}
	return nil
}
