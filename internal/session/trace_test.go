package session

import (
	"context"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/obs"
	"axml/internal/view"
	"axml/internal/xmltree"
)

// traceSystem builds a client peer and a data peer holding "catalog",
// with the catalog placed remotely so queries delegate.
func traceSystem(t *testing.T) (*core.System, *view.Manager) {
	t.Helper()
	sys := core.NewSystem(netsim.New())
	sys.MustAddPeer("client")
	data := sys.MustAddPeer("data")
	doc := xmltree.MustParse(`<catalog>
	  <item><name>chair</name><price>30</price></item>
	  <item><name>desk</name><price>120</price></item>
	  <item><name>lamp</name><price>15</price></item>
	</catalog>`)
	if err := data.InstallDocument("catalog", doc); err != nil {
		t.Fatal(err)
	}
	return sys, view.NewManager(sys)
}

// TestQueryTraceTree: a traced session query yields a span tree whose
// root covers parse, plan (with a cache verdict) and the delegated
// evaluation, with row counts on the root and bytes reconciled against
// netsim.
func TestQueryTraceTree(t *testing.T) {
	sys, views := traceSystem(t)
	reg := obs.NewRegistry()
	sess, err := NewLocal(sys, views, "client", WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	const src = `for $i in doc("catalog")/item where $i/price < 100 return $i/name`

	runTraced := func(id string) *obs.Trace {
		tr := obs.NewTrace(id)
		ctx := obs.WithTrace(context.Background(), tr)
		rows, err := sess.Query(ctx, src)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		forest, err := rows.Collect()
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		if len(forest) != 2 {
			t.Fatalf("rows = %d, want 2", len(forest))
		}
		return tr
	}

	before := sys.Net.Stats()
	tr := runTraced("q1")
	after := sys.Net.Stats()

	spans := tr.Spans()
	byPhase := map[string][]obs.Span{}
	for _, sp := range spans {
		byPhase[sp.Phase] = append(byPhase[sp.Phase], sp)
	}
	if len(byPhase["query"]) != 1 {
		t.Fatalf("want one query root span, got %+v", spans)
	}
	root := byPhase["query"][0]
	if root.Parent != 0 {
		t.Errorf("query root has parent %d", root.Parent)
	}
	if !strings.Contains(root.Name, "catalog") {
		t.Errorf("root span name = %q", root.Name)
	}
	if root.Rows != 2 {
		t.Errorf("root rows = %d, want 2", root.Rows)
	}
	if root.WallMs <= 0 {
		t.Errorf("root wall = %v, want > 0 (span must be ended)", root.WallMs)
	}
	for _, phase := range []string{"parse", "plan"} {
		ps := byPhase[phase]
		if len(ps) != 1 || ps[0].Parent != root.ID {
			t.Errorf("%s span missing or misparented: %+v", phase, ps)
		}
	}
	if got := byPhase["plan"][0].Attrs["cache"]; got != "miss" {
		t.Errorf("first plan cache attr = %q, want miss", got)
	}

	// The evaluation delegated client→data: its network spans carry all
	// the bytes this query moved.
	var spanBytes int64
	for _, sp := range spans {
		spanBytes += sp.BytesOut + sp.BytesIn
	}
	if moved := after.Bytes - before.Bytes; spanBytes != moved {
		t.Errorf("span bytes %d != netsim delta %d", spanBytes, moved)
	}
	if spanBytes == 0 {
		t.Error("no bytes attributed — query did not delegate?")
	}

	// Second run: same shape, cache verdict flips to hit.
	tr2 := runTraced("q2")
	var plan2 *obs.Span
	for _, sp := range tr2.Spans() {
		if sp.Phase == "plan" {
			cp := sp
			plan2 = &cp
		}
	}
	if plan2 == nil || plan2.Attrs["cache"] != "hit" {
		t.Errorf("second plan span = %+v, want cache=hit", plan2)
	}

	// The registry counters mirror Stats exactly.
	st := sess.Stats()
	snap := reg.Snapshot()
	if got := snap.Counters["session.plan_cache.hits"]; got != int64(st.Hits) {
		t.Errorf("registry hits %d != stats %d", got, st.Hits)
	}
	if got := snap.Counters["session.plan_cache.misses"]; got != int64(st.Misses) {
		t.Errorf("registry misses %d != stats %d", got, st.Misses)
	}
	if got := snap.Counters["session.queries"]; got != 2 {
		t.Errorf("session.queries = %d, want 2", got)
	}
	if h := snap.Histograms["session.query.first_row_ms"]; h.Count != 2 {
		t.Errorf("first_row_ms count = %d, want 2", h.Count)
	}
}

// TestQueryUntracedUnchanged: without a trace the pipeline works as
// before and no spans exist anywhere.
func TestQueryUntracedUnchanged(t *testing.T) {
	sys, views := traceSystem(t)
	sess, err := NewLocal(sys, views, "client")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(context.Background(), `for $i in doc("catalog")/item where $i/price < 100 return $i/name`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	forest, err := rows.Collect()
	if err != nil || len(forest) != 2 {
		t.Fatalf("forest=%d err=%v", len(forest), err)
	}
}

// TestQueryTraceFailure: a bad query still produces a closed root span
// carrying the error.
func TestQueryTraceFailure(t *testing.T) {
	sys, views := traceSystem(t)
	sess, err := NewLocal(sys, views, "client")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("bad")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := sess.Query(ctx, `for $i in`); err == nil {
		t.Fatal("expected parse error")
	}
	spans := tr.Spans()
	var root *obs.Span
	for _, sp := range spans {
		if sp.Phase == "query" {
			cp := sp
			root = &cp
		}
	}
	if root == nil || root.Err == "" {
		t.Errorf("root span should record the failure: %+v", spans)
	}
}
