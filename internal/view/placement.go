// Placement surgery: the runtime operations the adaptive-placement
// controller (internal/placement) drives. A view's placements were
// fixed at definition time until this file — Migrate moves one
// materialized copy to another peer by shipping the current content
// over the from→to link (not by re-evaluating at the base), clones the
// incremental provenance so maintenance stays delta-based after the
// move, AddPlacement/DropPlacement add and remove replicas, and the
// introspection helpers (Placements, PlacementsOf, BaseOf) expose the
// placement map that budgeting and CLI tooling read. Every mutation
// bumps the catalog generation, so cached plans re-plan against the
// new placement instead of reading a document that moved away.

package view

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"axml/internal/gendoc"
	"axml/internal/netsim"
	"axml/internal/peer"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// PlacementInfo describes one materialized copy of one view.
type PlacementInfo struct {
	View string
	At   netsim.PeerID
	// BaseAt is the peer whose copy of the base document feeds this
	// placement's maintenance (incremental placements), or the
	// placement peer itself for recompute placements.
	BaseAt netsim.PeerID
	Mode   string // "incremental" or "recompute"
	Bytes  int64  // serialized size of the materialized document
	Trees  int    // result trees currently materialized
}

// Placements returns every materialized placement of every view,
// sorted by view name then peer. The adaptive-placement controller
// reads it for budget accounting; axmlq -placements prints it.
func (m *Manager) Placements() []PlacementInfo {
	var out []PlacementInfo
	for _, name := range m.names() {
		st, ok := m.lookup(name)
		if !ok {
			continue
		}
		st.mu.Lock()
		for _, p := range st.placements {
			info := PlacementInfo{View: name, At: p.at, BaseAt: p.baseAt, Mode: st.mode}
			if host, ok := m.sys.Peer(p.at); ok {
				if n, ok := host.NodeByID(p.root); ok {
					info.Bytes = int64(n.ByteSize())
					info.Trees = len(n.Children)
				}
			}
			out = append(out, info)
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].View != out[j].View {
			return out[i].View < out[j].View
		}
		return out[i].At < out[j].At
	})
	return out
}

// PlacementsOf returns the peers currently holding a copy of the named
// view, sorted, and whether the view exists.
func (m *Manager) PlacementsOf(name string) ([]netsim.PeerID, bool) {
	st, ok := m.lookup(name)
	if !ok {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]netsim.PeerID, 0, len(st.placements))
	for _, p := range st.placements {
		out = append(out, p.at)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// BaseOf returns the peer hosting the view's primary base document —
// the source maintenance deltas flow from, and the peer a new replica
// materializes at. ok is false when the view does not exist or no peer
// hosts the base.
func (m *Manager) BaseOf(name string) (netsim.PeerID, bool) {
	st, ok := m.lookup(name)
	if !ok {
		return "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, p := range st.placements {
		if p.inc != nil {
			return p.baseAt, true
		}
	}
	prefer := st.def.At
	if len(st.placements) > 0 {
		prefer = st.placements[0].at
	}
	host, err := m.hostOf(st.bases[0], prefer)
	if err != nil {
		return "", false
	}
	return host, true
}

// AddPlacement materializes an additional replica of an existing view
// at peer at (the content is evaluated at the base and shipped, like a
// fresh definition).
func (m *Manager) AddPlacement(name string, at netsim.PeerID) error {
	st, ok := m.lookup(name)
	if !ok {
		return fmt.Errorf("view: no view %q", name)
	}
	return m.DefineQuery(name, st.def.Query, at)
}

// DropPlacement removes the view's materialized copy at peer at:
// watchers stop, the catalog registrations for that copy disappear and
// the document is uninstalled. Dropping the last copy removes the view
// entirely (queries fall back to the base). The catalog generation is
// bumped so cached plans that read this copy re-plan.
func (m *Manager) DropPlacement(name string, at netsim.PeerID) error {
	st, ok := m.lookup(name)
	if !ok {
		return fmt.Errorf("view: no view %q", name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := -1
	for i, p := range st.placements {
		if p.at == at {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("view %q: no placement at %s", name, at)
	}
	if len(st.placements) == 1 {
		// Last copy: the view itself goes away with it.
		m.mu.Lock()
		delete(m.views, name)
		m.mu.Unlock()
	}
	m.removePlacement(st, idx)
	m.gen.Add(1)
	return nil
}

// removePlacement drops one placement's watchers, catalog entries and
// document, and splices it out of the state. Callers hold st.mu.
func (m *Manager) removePlacement(st *state, idx int) {
	p := st.placements[idx]
	for _, cancel := range p.cancels {
		cancel()
	}
	p.cancels = nil
	docName := st.def.DocName()
	m.sys.Generics.UnregisterDoc(docName, gendoc.DocReplica{Doc: docName, At: p.at})
	if st.replica {
		m.sys.Generics.UnregisterDoc(st.bases[0], gendoc.DocReplica{Doc: docName, At: p.at})
	}
	if host, ok := m.sys.Peer(p.at); ok {
		_ = host.RemoveDocument(docName)
	}
	st.placements = append(st.placements[:idx], st.placements[idx+1:]...)
}

// Migrate moves the view's materialized copy from peer `from` to peer
// `to`. The current content ships over the from→to link — the cost the
// decision was priced with — rather than being re-derived at the base;
// incremental placements carry their delta provenance along (the
// DeltaFor state is cloned and the lineage map re-pointed at the
// shipped rows), so maintenance after the move is still incremental.
// The old copy is dropped and the catalog generation bumped once.
func (m *Manager) Migrate(ctx context.Context, name string, from, to netsim.PeerID) error {
	if from == to {
		return fmt.Errorf("view %q: migration from %s to itself", name, from)
	}
	st, ok := m.lookup(name)
	if !ok {
		return fmt.Errorf("view: no view %q", name)
	}
	target, ok := m.sys.Peer(to)
	if !ok {
		return fmt.Errorf("view %q: unknown peer %q", name, to)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var old *placement
	oldIdx := -1
	for i, p := range st.placements {
		if p.at == to {
			return fmt.Errorf("view %q: already placed at %s", name, to)
		}
		if p.at == from {
			old, oldIdx = p, i
		}
	}
	if old == nil {
		return fmt.Errorf("view %q: no placement at %s", name, from)
	}
	source, ok := m.sys.Peer(from)
	if !ok {
		return fmt.Errorf("view %q: placement peer %q is gone", name, from)
	}
	// Pin an epoch of the source store and ship it: the outgoing copy's
	// root, child list and shipped trees all come from one immutable
	// snapshot, so concurrent writers at the source cannot tear the
	// migrated content.
	snap := source.Snapshot()
	defer snap.Release()
	oldRoot, ok := snap.NodeByID(old.root)
	if !ok {
		return fmt.Errorf("view %q: placement root vanished at %s", name, from)
	}

	// The content lands into a staging document first: shipped trees
	// need an installed node reference to land onto, but readers must
	// never resolve the view's name to a half-filled copy. Once the
	// ship completes, the staging name is swapped for the real one —
	// node identifiers survive the swap (AssignIDs only fills zero
	// IDs), so the migrated provenance stays valid.
	docName := st.def.DocName()
	staging := docName + "~incoming"
	var newRoot *xmltree.Node
	if st.replica {
		// A full-copy view's root is the base document root itself;
		// recreate its shell and ship the children into it.
		newRoot = &xmltree.Node{Kind: oldRoot.Kind, Label: oldRoot.Label, Text: oldRoot.Text}
		newRoot.Attrs = append(newRoot.Attrs, oldRoot.Attrs...)
	} else {
		newRoot = xmltree.E("axml:view", xmltree.A("name", st.def.Name))
	}
	if err := target.InstallDocument(staging, newRoot); err != nil {
		return fmt.Errorf("view %q: migrating to %s: %w", name, to, err)
	}
	oldKids := make([]xmltree.NodeID, len(oldRoot.Children))
	for i, c := range oldRoot.Children {
		oldKids[i] = c.ID
	}
	if len(oldRoot.Children) > 0 {
		ref := peer.NodeRef{Peer: to, Node: newRoot.ID}
		// Shipping under st.mu is deliberate: the lock is what makes
		// the staging-doc swap atomic against concurrent refresh and
		// placement surgery on this one view, and the receiving peer's
		// handler lands data without ever touching view state, so the
		// hop cannot re-enter st.mu. Cross-view work is unaffected —
		// the lock is per-view, not manager-wide.
		//axmlvet:ignore lockedcall staging swap must be atomic vs refresh; remote side never re-enters st.mu
		if _, err := m.sys.ShipForest(ctx, from, ref, oldRoot.Children, 0); err != nil {
			// The move failed in transit; the old placement is intact.
			// On a lost ack the rows may have landed, but the half-built
			// copy is removed either way, so no catalog entry ever
			// points at it.
			_ = target.RemoveDocument(staging)
			return fmt.Errorf("view %q: shipping placement %s→%s: %w", name, from, to, err)
		}
	}

	newP := &placement{at: to, root: newRoot.ID, baseAt: to, dirty: old.dirty}
	if old.inc != nil {
		newP.inc = old.inc.Clone()
		newP.baseAt = old.baseAt
		newP.prov = map[xquery.Lineage][]xmltree.NodeID{}
		if err := remapProv(target, newRoot.ID, oldKids, old.prov, newP.prov); err != nil {
			// The rows landed but their provenance could not be carried
			// over; the placement works, the next refresh rebuilds it
			// from scratch instead of trusting the incremental state.
			newP.dirty = true
		}
	}

	// Swap staging → final. The landed rows live in the staging doc's
	// newest epoch (the shell pointer held here predates the landings),
	// so re-fetch its current root; node identifiers survive the swap.
	landed, ok := target.Document(staging)
	if !ok {
		return fmt.Errorf("view %q: staging document vanished at %s", name, to)
	}
	landedRoot := landed.Root
	if err := target.RemoveDocument(staging); err != nil {
		return fmt.Errorf("view %q: migrating to %s: %w", name, to, err)
	}
	if err := target.InstallDocument(docName, landedRoot); err != nil {
		return fmt.Errorf("view %q: migrating to %s: %w", name, to, err)
	}

	st.placements = append(st.placements, newP)
	m.sys.Generics.RegisterDoc(docName, gendoc.DocReplica{Doc: docName, At: to})
	if st.replica {
		m.sys.Generics.RegisterDoc(st.bases[0], gendoc.DocReplica{Doc: docName, At: to})
	}
	m.removePlacement(st, oldIdx)
	m.gen.Add(1)
	m.watchPlacement(st, newP)
	return nil
}

// remapProv re-points a migrated placement's lineage map at the nodes
// that landed at the new peer. The ship preserves child order, so the
// i-th old child corresponds to the i-th new child.
func remapProv(target *peer.Peer, newRootID xmltree.NodeID, oldKids []xmltree.NodeID,
	oldProv, newProv map[xquery.Lineage][]xmltree.NodeID) error {
	newKids, err := target.ChildIDs(newRootID)
	if err != nil {
		return err
	}
	if len(newKids) != len(oldKids) {
		return errors.New("migrated row count does not match")
	}
	idx := make(map[xmltree.NodeID]xmltree.NodeID, len(oldKids))
	for i, id := range oldKids {
		idx[id] = newKids[i]
	}
	for lineage, ids := range oldProv {
		mapped := make([]xmltree.NodeID, len(ids))
		for i, id := range ids {
			nid, ok := idx[id]
			if !ok {
				return fmt.Errorf("provenance row %d not found among migrated rows", id)
			}
			mapped[i] = nid
		}
		newProv[lineage] = mapped
	}
	return nil
}
