// Cross-deployment view landing. A federated MIGRATE/REPLICATE ships
// a view's already-materialized content from one axmlpeer process to
// another — the receiving deployment usually does not host the base
// documents, so it cannot DefineQuery (materialization would have to
// evaluate at a base host it doesn't have). Adopt is the entry point
// for that case: it installs the shipped tree as the view document,
// registers the shape and catalog entries so local queries rewrite
// onto the copy, and marks the view "adopted" — maintenance is skipped
// (the base lives in another deployment; cross-deployment maintenance
// is the gossip follow-on), so an adopted copy is a point-in-time
// snapshot refreshed only by re-shipping. Materialized is the sending
// side: a snapshot-pinned deep copy of the stored tree.

package view

import (
	"fmt"
	"strings"

	"axml/internal/gendoc"
	"axml/internal/netsim"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// ModeAdopted marks a view copy landed from another deployment: it is
// served and rewritten onto like any placement, but never refreshed
// locally (its base documents live elsewhere).
const ModeAdopted = "adopted"

// MaterializedView is the shippable form of one view: the defining
// query, a deep copy of the stored tree, and enough metadata for the
// receiving deployment to adopt it.
type MaterializedView struct {
	Name  string
	Query string
	// Root is the stored tree: the axml:view wrapper for selection
	// views, the copied base document itself for full-copy views.
	Root *xmltree.Node
	// Replica marks full-copy views (the adopting side re-registers
	// them under the base document class).
	Replica bool
	// Origin names the member owning the base document, carried along
	// so re-exports keep pointing home ("" for locally defined views).
	Origin string
}

// Materialized returns a shippable copy of the named view's first
// placement. The copy is taken from a pinned store epoch, so
// concurrent writers at the placement peer cannot tear it.
func (m *Manager) Materialized(name string) (MaterializedView, error) {
	st, ok := m.lookup(name)
	if !ok {
		return MaterializedView{}, fmt.Errorf("view: no view %q", name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.placements) == 0 {
		return MaterializedView{}, fmt.Errorf("view %q: no materialized placement", name)
	}
	p := st.placements[0]
	host, ok := m.sys.Peer(p.at)
	if !ok {
		return MaterializedView{}, fmt.Errorf("view %q: placement peer %q is gone", name, p.at)
	}
	snap := host.Snapshot()
	defer snap.Release()
	root, ok := snap.NodeByID(p.root)
	if !ok {
		return MaterializedView{}, fmt.Errorf("view %q: placement root vanished at %s", name, p.at)
	}
	return MaterializedView{
		Name:    name,
		Query:   st.def.Query.String(),
		Root:    xmltree.DeepCopy(root),
		Replica: st.replica,
		Origin:  st.origin,
	}, nil
}

// Adopt installs an already-materialized view copy shipped from
// another deployment at peer `at`: the tree is installed as the view
// document, the shape registered for query rewriting and the catalog
// entries added (full-copy views register under the base class too, so
// plain doc("base") queries transparently land on the copy). The view
// is marked ModeAdopted — refresh and auto-refresh skip it, because
// its base documents live in the shipping deployment. Re-adopting an
// existing adopted view at the same peer replaces its content (the
// freshness path of a federated re-ship); origin records the member
// that owns the base.
func (m *Manager) Adopt(name, src string, at netsim.PeerID, root *xmltree.Node, origin string) error {
	if name == "" || strings.ContainsAny(name, " \t\n@") {
		return fmt.Errorf("view: bad name %q", name)
	}
	if root == nil {
		return fmt.Errorf("view %q: adopting empty content", name)
	}
	q, err := xquery.Parse(src)
	if err != nil {
		return fmt.Errorf("view %q: %w", name, err)
	}
	bases := q.DocRefs()
	if len(bases) == 0 {
		return fmt.Errorf("view %q: query reads no document", name)
	}
	target, ok := m.sys.Peer(at)
	if !ok {
		return fmt.Errorf("view %q: unknown placement peer %q", name, at)
	}

	m.mu.Lock()
	st := m.views[name]
	if st == nil {
		sh, matchable := viewShape(q)
		st = &state{
			def:     Definition{Name: name, Query: q, At: at},
			bases:   bases,
			replica: matchable && sh.whole,
			mode:    ModeAdopted,
			origin:  origin,
		}
		if matchable {
			st.shape = sh
		}
		m.views[name] = st
	} else if st.def.Query.String() != q.String() {
		m.mu.Unlock()
		return fmt.Errorf("view %q: already defined with a different query", name)
	} else if st.mode != ModeAdopted {
		m.mu.Unlock()
		return fmt.Errorf("view %q: already materialized locally; refusing to adopt over it", name)
	}
	m.mu.Unlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	docName := st.def.DocName()
	// The shipped tree arrived whole (the wire's line framing is
	// all-or-nothing), so the install itself is the atomic step: either
	// the previous content stays current or the new tree replaces it.
	for i, p := range st.placements {
		if p.at == at {
			// Re-ship of an existing adopted copy: swap the content in
			// place, keeping the catalog registrations.
			if err := target.RemoveDocument(docName); err != nil {
				return fmt.Errorf("view %q: re-adopting at %s: %w", name, at, err)
			}
			if err := target.InstallDocument(docName, root); err != nil {
				return fmt.Errorf("view %q: re-adopting at %s: %w", name, at, err)
			}
			st.placements[i].root = root.ID
			m.gen.Add(1)
			return nil
		}
	}
	if err := target.InstallDocument(docName, root); err != nil {
		return fmt.Errorf("view %q: adopting at %s: %w", name, at, err)
	}
	st.placements = append(st.placements, &placement{at: at, root: root.ID, baseAt: at})
	m.sys.Generics.RegisterDoc(docName, gendoc.DocReplica{Doc: docName, At: at})
	if st.replica {
		m.sys.Generics.RegisterDoc(st.bases[0], gendoc.DocReplica{Doc: docName, At: at})
	}
	m.gen.Add(1)
	return nil
}
