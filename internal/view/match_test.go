package view

import (
	"strings"
	"testing"

	"axml/internal/xquery"
)

func mustShape(t *testing.T, src string) *shape {
	t.Helper()
	sh, ok := viewShape(xquery.MustParse(src))
	if !ok {
		t.Fatalf("viewShape(%q) not matchable", src)
	}
	return sh
}

func TestViewShapeAccepts(t *testing.T) {
	sh := mustShape(t, `for $x in doc("c")/item where $x/price < 100 return $x`)
	if sh.doc != "c" || len(sh.steps) != 1 || len(sh.conjuncts) != 1 || sh.whole {
		t.Errorf("bad shape: %+v", sh)
	}
	sh = mustShape(t, `doc("c")`)
	if !sh.whole || sh.doc != "c" {
		t.Errorf("full-copy shape not recognized: %+v", sh)
	}
	sh = mustShape(t, `doc("c")/a/b`)
	if sh.whole || len(sh.steps) != 2 {
		t.Errorf("path shape wrong: %+v", sh)
	}
}

func TestViewShapeRejects(t *testing.T) {
	for _, src := range []string{
		`param $p; for $x in doc("c")/item return $x`,         // parameterized
		`for $x in doc("c")/item return $x/name`,              // projecting return
		`for $x in doc("c")/item, $y in doc("d")/x return $x`, // two fors
		`for $x in doc("c")/item order by $x/price return $x`, // ordered
		`for $x in doc("c")/item[1] return $x`,                // predicate in path
	} {
		if _, ok := viewShape(xquery.MustParse(src)); ok {
			t.Errorf("viewShape(%q) should be rejected", src)
		}
	}
}

func rewriteOf(t *testing.T, viewSrc, querySrc string) (string, bool) {
	t.Helper()
	sh := mustShape(t, viewSrc)
	rw, ok := sh.rewrite("view:v", xquery.MustParse(querySrc))
	if !ok {
		return "", false
	}
	// The rewriting must round-trip through the parser (plans carry
	// query text across the wire).
	if _, err := xquery.Parse(rw.String()); err != nil {
		t.Fatalf("rewritten query does not re-parse: %q: %v", rw.String(), err)
	}
	return rw.String(), true
}

func TestRewriteIdenticalPredicateDropped(t *testing.T) {
	got, ok := rewriteOf(t,
		`for $x in doc("c")/item where $x/price < 100 return $x`,
		`for $i in doc("c")/item where $i/price < 100 return <hit>{$i/name}</hit>`)
	if !ok {
		t.Fatal("expected a rewrite")
	}
	if !strings.Contains(got, `doc("view:v")/item`) {
		t.Errorf("not re-rooted on the view: %q", got)
	}
	if strings.Contains(got, "where") {
		t.Errorf("redundant predicate should be dropped: %q", got)
	}
}

func TestRewriteTighterBoundKept(t *testing.T) {
	got, ok := rewriteOf(t,
		`for $x in doc("c")/item where $x/price < 300 return $x`,
		`for $i in doc("c")/item where $i/price < 100 return $i/name`)
	if !ok {
		t.Fatal("expected a rewrite (query bound is tighter)")
	}
	if !strings.Contains(got, "where") || !strings.Contains(got, "100") {
		t.Errorf("tighter query predicate must be kept: %q", got)
	}
}

func TestRewritePathPrefix(t *testing.T) {
	got, ok := rewriteOf(t,
		`for $x in doc("c")/region return $x`,
		`for $i in doc("c")/region/item where $i/price < 5 return $i`)
	if !ok {
		t.Fatal("expected a prefix rewrite")
	}
	if !strings.Contains(got, `doc("view:v")/region/item`) {
		t.Errorf("prefix rewrite wrong: %q", got)
	}
}

func TestRewriteFullCopyView(t *testing.T) {
	got, ok := rewriteOf(t,
		`doc("c")`,
		`for $i in doc("c")/item where $i/price < 5 return $i/name`)
	if !ok {
		t.Fatal("expected a full-copy rewrite")
	}
	if !strings.Contains(got, `doc("view:v")/item`) {
		t.Errorf("full-copy rewrite wrong: %q", got)
	}
}

func TestRewriteRejects(t *testing.T) {
	cases := []struct{ view, query, why string }{
		{`for $x in doc("c")/item where $x/price < 50 return $x`,
			`for $i in doc("c")/item where $i/price < 100 return $i`,
			"query predicate weaker than view's"},
		{`for $x in doc("c")/item where $x/price < 100 return $x`,
			`for $i in doc("c")/item return $i`,
			"query has no predicate at all"},
		{`for $x in doc("c")/item return $x`,
			`for $i in doc("d")/item return $i`,
			"different document"},
		{`for $x in doc("c")/region/item return $x`,
			`for $i in doc("c")/region return $i`,
			"query path shorter than view path"},
		{`for $x in doc("c")/item return $x`,
			`for $i in doc("c")/item return $i/..`,
			"upward navigation escapes the materialized subtree"},
		{`for $x in doc("c")/item where $x/stock > 0 return $x`,
			`for $i in doc("c")/item where $i/price < 10 return $i`,
			"unrelated predicates"},
	}
	for _, c := range cases {
		if got, ok := rewriteOf(t, c.view, c.query); ok {
			t.Errorf("rewrite should fail (%s), got %q", c.why, got)
		}
	}
}

func TestImpliesMatrix(t *testing.T) {
	mk := func(src string) *xquery.Path {
		q := xquery.MustParse(`for $v in doc("c")/i where ` + src + ` return $v`)
		return q.Body.(*xquery.FLWR).Where.(*xquery.Path)
	}
	cases := []struct {
		q, v string
		want bool
	}{
		{`$v/p < 10`, `$v/p < 10`, true},
		{`$v/p < 10`, `$v/p < 20`, true},
		{`$v/p < 20`, `$v/p < 10`, false},
		{`$v/p <= 10`, `$v/p < 20`, true},
		{`$v/p <= 10`, `$v/p <= 10`, true},
		{`$v/p = 5`, `$v/p < 10`, true},
		{`$v/p = 15`, `$v/p < 10`, false},
		{`$v/p > 10`, `$v/p > 5`, true},
		{`$v/p > 5`, `$v/p > 10`, false},
		{`$v/p >= 10`, `$v/p > 5`, true},
		{`$v/q < 10`, `$v/p < 20`, false},
	}
	for _, c := range cases {
		if got := implies(mk(c.q).X, mk(c.v).X); got != c.want {
			t.Errorf("implies(%s ⇒ %s) = %v, want %v", c.q, c.v, got, c.want)
		}
	}
}

func TestQueryKeyNormalization(t *testing.T) {
	key := func(src string) string {
		return QueryKey(xquery.MustParse(src))
	}
	// Formatting and whitespace collapse (String round-trip).
	a := key("for $i in doc(\"d\")/item\n  where $i/p < 10 and $i/q > 2\n  return $i/name")
	b := key(`for $i in doc("d")/item where $i/p < 10 and $i/q > 2 return $i/name`)
	if a != b {
		t.Errorf("formatting fragments the key:\n%s\n%s", a, b)
	}
	// Conjunct order collapses.
	c := key(`for $i in doc("d")/item where $i/q > 2 and $i/p < 10 return $i/name`)
	if a != c {
		t.Errorf("conjunct order fragments the key:\n%s\n%s", a, c)
	}
	// Different predicates stay distinct.
	d := key(`for $i in doc("d")/item where $i/p < 11 and $i/q > 2 return $i/name`)
	if a == d {
		t.Error("distinct predicates share a key")
	}
	// Non-FLWR queries key on their canonical source.
	if key(`doc("d")/item`) != key(` doc("d")/item `) {
		t.Error("path query keys differ on whitespace")
	}
	if key(`doc("d")/item`) == key(`doc("d")/other`) {
		t.Error("distinct paths share a key")
	}
}
