package view

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/workload"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// testSystem3 builds clientA+clientB+data on a WAN with a catalog at
// data.
func testSystem3(t *testing.T, items int) *core.System {
	t.Helper()
	net := netsim.New()
	netsim.Uniform(net, []netsim.PeerID{"clientA", "clientB", "data"}, wan)
	sys := core.NewSystem(net)
	sys.MustAddPeer("clientA")
	sys.MustAddPeer("clientB")
	data := sys.MustAddPeer("data")
	if err := data.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: items, PriceMax: 1000, DescWords: 4, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestMigrateShipsContentAndKeepsIncrementalMaintenance: migrating an
// incremental placement moves the materialized rows over the from→to
// link, keeps the result multiset intact, and carries the delta
// provenance along — a post-move deletion retracts exactly the row the
// vanished source had produced, without a full rebuild.
func TestMigrateShipsContentAndKeepsIncrementalMaintenance(t *testing.T) {
	sys := testSystem3(t, 120)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()
	vsrc := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", vsrc, "clientA"); err != nil {
		t.Fatal(err)
	}
	before := viewTrees(t, sys, "clientA", "cheap")
	beforeCopy := make([]*xmltree.Node, len(before))
	for i, n := range before {
		beforeCopy[i] = xmltree.DeepCopy(n)
	}
	genBefore := m.Generation()
	preStats := sys.Net.Stats()

	if err := m.Migrate(context.Background(), "cheap", "clientA", "clientB"); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == genBefore {
		t.Error("migration must bump the catalog generation")
	}
	clientA, _ := sys.Peer("clientA")
	if clientA.HasDocument(DocPrefix + "cheap") {
		t.Error("old placement document still installed")
	}
	after := viewTrees(t, sys, "clientB", "cheap")
	if !sameMultiset(beforeCopy, after) {
		t.Fatalf("migration changed the view content: %d trees vs %d", len(beforeCopy), len(after))
	}
	if ps, ok := m.PlacementsOf("cheap"); !ok || len(ps) != 1 || ps[0] != "clientB" {
		t.Fatalf("PlacementsOf = %v, %v", ps, ok)
	}
	st := sys.Net.Stats()
	moved := st.PerLink["clientA"]["clientB"].Bytes - preStats.PerLink["clientA"]["clientB"].Bytes
	if moved <= 0 {
		t.Error("migration should ship the content over the from→to link")
	}
	if fromData := st.PerLink["data"]["clientB"].Bytes - preStats.PerLink["data"]["clientB"].Bytes; fromData != 0 {
		t.Errorf("migration re-derived at the base (%d bytes data→clientB), want a from→to ship", fromData)
	}

	// Maintenance after the move is still incremental and retraction-
	// correct: delete one matching base item, refresh, and the view must
	// equal ground truth without a full re-ship.
	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	var victim xmltree.NodeID
	for _, it := range catalog.Root.ChildElementsByLabel("item") {
		price := it.FirstChildElement("price")
		if price != nil && len(price.Children) > 0 {
			var v int
			if _, err := fmt.Sscan(price.TextContent(), &v); err == nil && v < 500 {
				victim = it.ID
				break
			}
		}
	}
	if victim == 0 {
		t.Fatal("no matching item to delete")
	}
	if err := data.RemoveChildByID(catalog.Root.ID, victim); err != nil {
		t.Fatal(err)
	}
	preRefresh := sys.Net.Stats()
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	truth, err := data.RunQuery(xquery.MustParse(vsrc))
	if err != nil {
		t.Fatal(err)
	}
	got := viewTrees(t, sys, "clientB", "cheap")
	if !sameMultiset(got, truth) {
		t.Fatalf("post-migration refresh diverged: %d rows vs truth %d", len(got), len(truth))
	}
	if len(got) != len(beforeCopy)-1 {
		t.Errorf("expected exactly one retracted row: %d → %d", len(beforeCopy), len(got))
	}
	refreshBytes := sys.Net.Stats().Bytes - preRefresh.Bytes
	viewBytes := int64(0)
	for _, n := range got {
		viewBytes += int64(n.ByteSize())
	}
	if refreshBytes >= viewBytes {
		t.Errorf("refresh shipped %d bytes for one retraction (view is %d bytes): provenance was lost in the move",
			refreshBytes, viewBytes)
	}
}

// TestMigrateReplicaViewMovesBaseRegistration: a full-copy view is a
// catalog replica of its base class; migrating it moves both catalog
// registrations.
func TestMigrateReplicaViewMovesBaseRegistration(t *testing.T) {
	sys := testSystem3(t, 40)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()
	if err := m.Define("copy", `doc("catalog")`, "clientA"); err != nil {
		t.Fatal(err)
	}
	if err := m.Migrate(context.Background(), "copy", "clientA", "clientB"); err != nil {
		t.Fatal(err)
	}
	var ats []netsim.PeerID
	for _, rep := range sys.Generics.DocReplicas("catalog") {
		if rep.Doc == DocPrefix+"copy" {
			ats = append(ats, rep.At)
		}
	}
	if len(ats) != 1 || ats[0] != "clientB" {
		t.Fatalf("base-class registrations after migration = %v, want [clientB]", ats)
	}
	data, _ := sys.Peer("data")
	truth, _ := data.Document("catalog")
	clientB, _ := sys.Peer("clientB")
	got, ok := clientB.Document(DocPrefix + "copy")
	if !ok {
		t.Fatal("migrated replica missing at clientB")
	}
	if !xmltree.Equal(truth.Root, got.Root) {
		t.Error("migrated full-copy view is not equivalent to the base document")
	}
}

// TestAddAndDropPlacement: replicas add and drop one at a time;
// dropping the last copy removes the view.
func TestAddAndDropPlacement(t *testing.T) {
	sys := testSystem3(t, 60)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()
	if err := m.Define("cheap",
		`for $i in doc("catalog")/item where $i/price < 500 return $i`, "clientA"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPlacement("cheap", "clientB"); err != nil {
		t.Fatal(err)
	}
	ps, _ := m.PlacementsOf("cheap")
	if len(ps) != 2 {
		t.Fatalf("placements = %v", ps)
	}
	infos := m.Placements()
	if len(infos) != 2 || infos[0].Bytes == 0 {
		t.Fatalf("Placements() = %+v", infos)
	}
	if base, ok := m.BaseOf("cheap"); !ok || base != "data" {
		t.Fatalf("BaseOf = %v, %v", base, ok)
	}
	gen := m.Generation()
	if err := m.DropPlacement("cheap", "clientA"); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == gen {
		t.Error("DropPlacement must bump the generation")
	}
	clientA, _ := sys.Peer("clientA")
	if clientA.HasDocument(DocPrefix + "cheap") {
		t.Error("dropped placement document still installed")
	}
	if ps, _ := m.PlacementsOf("cheap"); len(ps) != 1 || ps[0] != "clientB" {
		t.Fatalf("placements after drop = %v", ps)
	}
	if err := m.DropPlacement("cheap", "clientB"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.PlacementsOf("cheap"); ok {
		t.Error("dropping the last placement should remove the view")
	}
	if vs := m.Views(); len(vs) != 0 {
		t.Errorf("Views() after last drop = %+v", vs)
	}
}

// TestMigrateErrors: bad moves are rejected without disturbing the
// placement.
func TestMigrateErrors(t *testing.T) {
	sys := testSystem3(t, 30)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()
	if err := m.Define("cheap",
		`for $i in doc("catalog")/item where $i/price < 500 return $i`, "clientA"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Migrate(ctx, "cheap", "clientA", "clientA"); err == nil {
		t.Error("self-migration should fail")
	}
	if err := m.Migrate(ctx, "cheap", "clientB", "data"); err == nil {
		t.Error("migration from a peer without a placement should fail")
	}
	if err := m.Migrate(ctx, "nope", "clientA", "clientB"); err == nil {
		t.Error("migrating an unknown view should fail")
	}
	if err := m.AddPlacement("cheap", "clientB"); err != nil {
		t.Fatal(err)
	}
	if err := m.Migrate(ctx, "cheap", "clientA", "clientB"); err == nil {
		t.Error("migration onto an occupied peer should fail")
	}
	ps, _ := m.PlacementsOf("cheap")
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	if len(ps) != 2 || ps[0] != "clientA" || ps[1] != "clientB" {
		t.Fatalf("placements disturbed by failed moves: %v", ps)
	}
}
