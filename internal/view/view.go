// Package view implements materialized XML views over an AXML system,
// in the style of ViP2P ("XML views in P2P") and LiquidXML: a view is
// a named query materialized at a chosen peer, kept fresh as the base
// documents evolve, and offered to the optimizer as an alternative
// data source. Repeated queries that a view subsumes stop paying
// remote data-shipping costs: the plan search of internal/opt compares
// "ship from base@remote" against "read view@local" under the real
// link model and picks whichever is cheaper.
//
// Three cooperating pieces:
//
//   - Manager (this file): defines views, materializes them by running
//     their query once, installs the result as a document "view:<name>"
//     at the placement peer, and registers it in the gendoc.Catalog so
//     generic resolution can pick the nearest copy. Full-copy views
//     (query `doc("d")`) additionally register under the base class,
//     so plain d@any resolution transparently lands on them.
//   - match.go: a conservative syntactic containment check that
//     rewrites a query to read from a view that subsumes it (same
//     document, path-prefix match, weaker-or-equal predicates).
//   - refresh.go: maintenance. Single-source selection views refresh
//     incrementally through xquery.DeltaFor's delta provenance (the
//     base peer evaluates the delta under its read lock and ships new
//     results plus retraction tombstones for deleted or updated
//     sources); all other shapes fall back to full re-materialization.
package view

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"axml/internal/core"
	"axml/internal/gendoc"
	"axml/internal/netsim"
	"axml/internal/peer"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// DocPrefix namespaces view documents in peers' stores and in the
// generics catalog, so views never collide with base documents.
const DocPrefix = "view:"

// Definition declares one materialized view: a name, the defining
// query, and the peer at which the result is materialized. Defining
// the same name at several peers creates replicas of one view class.
type Definition struct {
	Name  string
	Query *xquery.Query
	At    netsim.PeerID
}

// DocName returns the document name the view materializes under.
func (d Definition) DocName() string { return DocPrefix + d.Name }

// Info is a point-in-time description of one view for introspection
// (Views, cmd listings).
type Info struct {
	Name       string
	Query      string
	Mode       string // "incremental", "recompute" or "adopted"
	Replica    bool   // full-copy view registered under the base class
	Origin     string // owning member of an adopted view's base (federation)
	Placements []netsim.PeerID
	Trees      int    // result trees currently materialized (first placement)
	LastError  string // most recent auto-refresh failure, if any
}

// placement is one materialized copy of a view.
type placement struct {
	at     netsim.PeerID    // placement peer
	root   xmltree.NodeID   // view root node at the placement peer
	inc    *xquery.DeltaFor // incremental state; nil for recompute views
	baseAt netsim.PeerID    // peer whose copy of the base feeds this placement
	// prov is the delta provenance of incremental placements: for each
	// source lineage at the base, the identifiers of the view-root
	// children it produced at this placement. A retraction of a source
	// removes exactly these children and nothing else.
	prov map[xquery.Lineage][]xmltree.NodeID
	// dirty marks a placement whose materialized rows and provenance
	// are known to disagree (a ship landed but its provenance could
	// not be recorded); the next refresh re-materializes it fully
	// instead of trusting the incremental state.
	dirty   bool
	cancels []func() // watcher cancels (auto-refresh)
}

// state is the manager-side record of one view class.
type state struct {
	mu         sync.Mutex // serializes refreshes of this view
	def        Definition // Query and Name; At is the first placement
	shape      *shape     // matchable normal form; nil when unmatchable
	mode       string
	replica    bool
	origin     string   // owning member of an adopted view's base (federation)
	bases      []string // documents the query reads
	placements []*placement
	lastErr    error
}

// Manager owns the views of one system.
type Manager struct {
	sys *core.System

	// gen counts catalog-shaping changes (Define/Drop). Plan caches
	// key their entries on it: a bumped generation invalidates every
	// cached plan, since a new or dropped view changes which rewrites
	// the optimizer should consider.
	gen atomic.Uint64

	// ctx is canceled by Close: in-flight auto-refreshes and their
	// remote ships stop instead of racing the shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	views  map[string]*state
	auto   bool
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewManager creates an empty view manager for the system.
func NewManager(sys *core.System) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{sys: sys, views: map[string]*state{}, done: make(chan struct{}),
		ctx: ctx, cancel: cancel}
}

// System returns the core system the views are defined over. Layers
// that compose with views — the session pipeline, wire servers — reach
// the evaluator through it.
func (m *Manager) System() *core.System { return m.sys }

// Generation returns the current view-catalog generation. It changes
// whenever a view is defined, replicated or dropped; cached query
// plans from an older generation must be re-optimized.
func (m *Manager) Generation() uint64 { return m.gen.Load() }

// Define parses src and materializes it as a view (see DefineQuery).
func (m *Manager) Define(name, src string, at netsim.PeerID) error {
	q, err := xquery.Parse(src)
	if err != nil {
		return fmt.Errorf("view %q: %w", name, err)
	}
	return m.DefineQuery(name, q, at)
}

// DefineQuery materializes q as view name at peer at: the query is
// evaluated once (network-charged), the result installed as document
// "view:<name>" at the placement peer and registered in the generics
// catalog. Re-defining an existing name at a new peer adds a replica;
// the query must be identical.
func (m *Manager) DefineQuery(name string, q *xquery.Query, at netsim.PeerID) error {
	if name == "" || strings.ContainsAny(name, " \t\n@") {
		return fmt.Errorf("view: bad name %q", name)
	}
	if q.Arity() != 0 {
		return fmt.Errorf("view %q: parameterized queries cannot be materialized", name)
	}
	bases := q.DocRefs()
	if len(bases) == 0 {
		return fmt.Errorf("view %q: query reads no document", name)
	}
	if _, ok := m.sys.Peer(at); !ok {
		return fmt.Errorf("view %q: unknown placement peer %q", name, at)
	}

	m.mu.Lock()
	st := m.views[name]
	if st == nil {
		sh, matchable := viewShape(q)
		st = &state{
			def:     Definition{Name: name, Query: q, At: at},
			bases:   bases,
			replica: matchable && sh.whole,
			mode:    "recompute",
		}
		if matchable {
			st.shape = sh
		}
		if len(bases) == 1 {
			// Per-placement DeltaFor state is created at materialization;
			// here we only probe whether the shape incrementalizes.
			if _, ok := xquery.NewDeltaFor(q, nil); ok {
				st.mode = "incremental"
			}
		}
		m.views[name] = st
	} else if st.def.Query.String() != q.String() {
		m.mu.Unlock()
		return fmt.Errorf("view %q: already defined with a different query", name)
	}
	m.mu.Unlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	for _, p := range st.placements {
		if p.at == at {
			return fmt.Errorf("view %q: already placed at %s", name, at)
		}
	}
	// Materializing ships the view's contents while st.mu is held —
	// deliberate, same discipline as Migrate: the lock makes the
	// placement visible-or-absent atomically against refresh, and the
	// receiving peer lands data without touching view state, so the
	// hop cannot re-enter st.mu.
	//axmlvet:ignore lockedcall placement must appear atomically vs refresh; remote side never re-enters st.mu
	p, err := m.materialize(m.ctx, st, at)
	if err != nil {
		// A view with no materialized placement must not linger: its
		// shape would keep rewriting queries onto a document that was
		// never installed.
		if len(st.placements) == 0 {
			m.mu.Lock()
			delete(m.views, name)
			m.mu.Unlock()
		}
		return err
	}
	st.placements = append(st.placements, p)
	docName := st.def.DocName()
	m.sys.Generics.RegisterDoc(docName, gendoc.DocReplica{Doc: docName, At: at})
	if st.replica {
		// A full copy is a legitimate replica of the base document
		// class: d@any resolution may pick it (definition (9)).
		m.sys.Generics.RegisterDoc(st.bases[0], gendoc.DocReplica{Doc: docName, At: at})
	}
	m.gen.Add(1)
	m.watchPlacement(st, p)
	return nil
}

// materialize produces one placement of st at peer at. Incremental
// views are evaluated by the base peer (under its read lock) and only
// the results ship; recompute views are evaluated at the placement
// peer, which fetches the base documents whole (definition (7)).
// Callers hold st.mu.
func (m *Manager) materialize(ctx context.Context, st *state, at netsim.PeerID) (*placement, error) {
	target, ok := m.sys.Peer(at)
	if !ok {
		return nil, fmt.Errorf("view %q: unknown peer %q", st.def.Name, at)
	}
	docName := st.def.DocName()
	if st.mode == "incremental" {
		baseAt, err := m.hostOf(st.bases[0], at)
		if err != nil {
			return nil, fmt.Errorf("view %q: %w", st.def.Name, err)
		}
		host, _ := m.sys.Peer(baseAt)
		inc, _ := xquery.NewDeltaFor(st.def.Query, nil)
		h := host.Snapshot()
		initial, err := inc.DeltaEventsWith(&xquery.Env{Resolve: h.Resolver()})
		h.Release()
		if err != nil {
			return nil, fmt.Errorf("view %q: materializing: %w", st.def.Name, err)
		}
		root := xmltree.E("axml:view", xmltree.A("name", st.def.Name))
		if err := target.InstallDocument(docName, root); err != nil {
			return nil, fmt.Errorf("view %q: %w", st.def.Name, err)
		}
		p := &placement{at: at, root: root.ID, inc: inc, baseAt: baseAt,
			prov: map[xquery.Lineage][]xmltree.NodeID{}}
		if trees := initial.AddedTrees(); len(trees) > 0 {
			ref := peer.NodeRef{Peer: at, Node: root.ID}
			if _, err := m.sys.ShipForest(ctx, baseAt, ref, trees, 0); err != nil {
				inc.Rollback()
				return nil, fmt.Errorf("view %q: shipping initial state: %w", st.def.Name, err)
			}
			if err := m.recordProv(p, initial.Additions); err != nil {
				return nil, fmt.Errorf("view %q: %w", st.def.Name, err)
			}
		}
		return p, nil
	}

	forest, err := m.evalFull(ctx, st, at)
	if err != nil {
		return nil, fmt.Errorf("view %q: materializing: %w", st.def.Name, err)
	}
	root, err := viewRoot(st, forest)
	if err != nil {
		return nil, err
	}
	if err := target.InstallDocument(docName, root); err != nil {
		return nil, fmt.Errorf("view %q: %w", st.def.Name, err)
	}
	return &placement{at: at, root: root.ID, baseAt: at}, nil
}

// evalFull evaluates the view query for a full (re-)materialization at
// peer at. The evaluation is delegated to a peer that physically hosts
// the primary base document — never resolved through the generics
// catalog, where the view's own replica registration would short-
// circuit a refresh into reading its stale self. The delegation and
// the shipped results are network-charged as usual.
func (m *Manager) evalFull(ctx context.Context, st *state, at netsim.PeerID) ([]*xmltree.Node, error) {
	host, err := m.hostOf(st.bases[0], at)
	if err != nil {
		if st.replica {
			// Resolving through the catalog would find this view's own
			// replica registration and copy its stale self.
			return nil, fmt.Errorf("base document %q is not hosted by any peer", st.bases[0])
		}
		// The base exists only as a catalog class; evaluate in place.
		host = at
	}
	var e core.Expr = &core.Query{Q: st.def.Query, At: at}
	if host != at {
		e = &core.EvalAt{At: host, E: &core.Query{Q: st.def.Query, At: host}}
	}
	res, err := m.sys.EvalContext(ctx, at, e)
	if err != nil {
		return nil, err
	}
	return res.Forest, nil
}

// viewRoot builds the stored tree for a recompute materialization:
// full-copy views install the copied document itself (so base-relative
// paths keep working), other views wrap the result forest.
func viewRoot(st *state, forest []*xmltree.Node) (*xmltree.Node, error) {
	if st.replica {
		if len(forest) != 1 {
			return nil, fmt.Errorf("view %q: full-copy view produced %d trees", st.def.Name, len(forest))
		}
		return forest[0], nil
	}
	root := xmltree.E("axml:view", xmltree.A("name", st.def.Name))
	for _, n := range forest {
		root.AppendChild(n)
	}
	return root, nil
}

// hostOf locates a peer hosting the named base document, preferring
// the given peer, then scanning in deterministic order.
func (m *Manager) hostOf(doc string, prefer netsim.PeerID) (netsim.PeerID, error) {
	if p, ok := m.sys.Peer(prefer); ok && p.HasDocument(doc) {
		return prefer, nil
	}
	ids := m.sys.Peers()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if p, ok := m.sys.Peer(id); ok && p.HasDocument(doc) {
			return id, nil
		}
	}
	return "", fmt.Errorf("no peer hosts base document %q", doc)
}

// Drop removes a view: every placement's document is uninstalled and
// its catalog registrations removed.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	st, ok := m.views[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("view: no view %q", name)
	}
	delete(m.views, name)
	m.mu.Unlock()
	m.gen.Add(1)

	st.mu.Lock()
	defer st.mu.Unlock()
	docName := st.def.DocName()
	for _, p := range st.placements {
		for _, cancel := range p.cancels {
			cancel()
		}
		m.sys.Generics.UnregisterDoc(docName, gendoc.DocReplica{Doc: docName, At: p.at})
		if st.replica {
			m.sys.Generics.UnregisterDoc(st.bases[0], gendoc.DocReplica{Doc: docName, At: p.at})
		}
		if host, ok := m.sys.Peer(p.at); ok {
			_ = host.RemoveDocument(docName)
		}
	}
	st.placements = nil
	return nil
}

// Views describes the defined views, sorted by name.
func (m *Manager) Views() []Info {
	m.mu.Lock()
	states := make([]*state, 0, len(m.views))
	for _, st := range m.views {
		states = append(states, st)
	}
	m.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].def.Name < states[j].def.Name })
	out := make([]Info, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		info := Info{
			Name:    st.def.Name,
			Query:   st.def.Query.String(),
			Mode:    st.mode,
			Replica: st.replica,
			Origin:  st.origin,
		}
		if st.lastErr != nil {
			info.LastError = st.lastErr.Error()
		}
		for _, p := range st.placements {
			info.Placements = append(info.Placements, p.at)
		}
		if len(st.placements) > 0 {
			if host, ok := m.sys.Peer(st.placements[0].at); ok {
				if n, ok := host.NodeByID(st.placements[0].root); ok {
					info.Trees = len(n.Children)
				}
			}
		}
		st.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// Definitions returns the view definitions (first placement each),
// sorted by name.
func (m *Manager) Definitions() []Definition {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Definition, 0, len(m.views))
	for _, st := range m.views {
		out = append(out, st.def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookup returns the state of a view.
func (m *Manager) lookup(name string) (*state, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.views[name]
	return st, ok
}

// names returns the view names sorted.
func (m *Manager) names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.views))
	for name := range m.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
