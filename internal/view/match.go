// View matching: a conservative syntactic containment check in the
// tradition of answering-queries-using-views, restricted to shapes the
// FLWR language makes cheap to recognize. A view
//
//	for $v in doc("d")/s1/…/sk where C1 and … and Cm return $v
//
// (or the full-copy form `doc("d")`) subsumes a query
//
//	for $x in doc("d")/s1/…/sk/…/sn where D1 and … and Dl … return R
//
// when the query's source path extends the view's (path-prefix match)
// and every view conjunct Ci is implied by some query conjunct Dj
// (weaker-or-equal predicate: identical, or a strictly tighter numeric
// bound on the same path). The rewriting re-roots the query's first
// for clause on the view document, drops the query conjuncts the view
// already applied, and keeps everything else verbatim.
//
// Soundness relies on the view storing deep copies of the matched
// subtrees: any rewritten navigation must stay inside them, so queries
// using upward or sibling axes anywhere are rejected.
package view

import (
	"sort"

	"axml/internal/xpath"
	"axml/internal/xquery"
)

// QueryKey returns the normalized shape key of a query, the cache key
// of the session plan cache. It builds on the same conjunct analysis
// the view matcher uses: a FLWR query's where clause is split into its
// top-level conjuncts (splitAnd) and re-joined in sorted order, so
// queries that differ only in conjunct order — `where $a and $b` vs
// `where $b and $a` — share one cached plan. Everything else falls
// back to the canonical re-rendered source (String round-trips through
// the parser, so whitespace and formatting differences also collapse).
func QueryKey(q *xquery.Query) string {
	body, ok := q.Body.(*xquery.FLWR)
	if !ok || body.Where == nil {
		return q.String()
	}
	wp, ok := body.Where.(*xquery.Path)
	if !ok || len(wp.Docs) != 0 {
		return q.String()
	}
	conjuncts := splitAnd(wp.X)
	if len(conjuncts) < 2 {
		return q.String()
	}
	sorted := make([]xpath.Expr, len(conjuncts))
	copy(sorted, conjuncts)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].String() < sorted[j].String()
	})
	norm := &xquery.Query{Params: q.Params, Body: &xquery.FLWR{
		Clauses: body.Clauses,
		Where:   &xquery.Path{X: joinAnd(sorted)},
		Order:   body.Order,
		Return:  body.Return,
	}}
	return norm.String()
}

// shape is the normalized matchable form of a view definition.
type shape struct {
	doc       string
	forVar    string
	steps     []xpath.Step // child-axis name-test steps, no predicates
	conjuncts []xpath.Expr // where conjuncts, each over forVar only
	whole     bool         // bare doc("d"): full document copy
}

// viewShape normalizes a view query; ok is false when the shape is not
// matchable (the view still materializes, it just cannot accelerate
// other queries).
func viewShape(q *xquery.Query) (*shape, bool) {
	if q.Arity() != 0 {
		return nil, false
	}
	switch body := q.Body.(type) {
	case *xquery.Path:
		doc, steps, ok := docSteps(body)
		if !ok || !plainNameSteps(steps) {
			return nil, false
		}
		return &shape{doc: doc, steps: steps, whole: len(steps) == 0}, true
	case *xquery.FLWR:
		if len(body.Clauses) != 1 || body.Order != nil {
			return nil, false
		}
		fc, ok := body.Clauses[0].(xquery.ForClause)
		if !ok {
			return nil, false
		}
		src, ok := fc.Source.(*xquery.Path)
		if !ok {
			return nil, false
		}
		doc, steps, ok := docSteps(src)
		if !ok || len(steps) == 0 || !plainNameSteps(steps) {
			return nil, false
		}
		if !isVarOnly(body.Return, fc.Var) {
			return nil, false
		}
		var conjuncts []xpath.Expr
		if body.Where != nil {
			wp, ok := body.Where.(*xquery.Path)
			if !ok || len(wp.Docs) != 0 {
				return nil, false
			}
			conjuncts = splitAnd(wp.X)
			for _, c := range conjuncts {
				if !overVarOnly(c, fc.Var) || !downwardOnly(c) {
					return nil, false
				}
			}
		}
		return &shape{doc: doc, forVar: fc.Var, steps: steps, conjuncts: conjuncts}, true
	default:
		return nil, false
	}
}

// rewrite attempts to answer q from the view; it returns the rewritten
// query reading viewDoc, or ok=false when the view does not provably
// subsume q.
func (v *shape) rewrite(viewDoc string, q *xquery.Query) (*xquery.Query, bool) {
	if q.Arity() != 0 {
		return nil, false
	}
	body, ok := q.Body.(*xquery.FLWR)
	if !ok || len(body.Clauses) == 0 {
		return nil, false
	}
	fc, ok := body.Clauses[0].(xquery.ForClause)
	if !ok {
		return nil, false
	}
	src, ok := fc.Source.(*xquery.Path)
	if !ok {
		return nil, false
	}
	doc, steps, ok := docSteps(src)
	if !ok || doc != v.doc || len(steps) < len(v.steps) {
		return nil, false
	}
	for i, vs := range v.steps {
		if !stepEqual(vs, steps[i]) {
			return nil, false
		}
	}
	// The rewritten query navigates inside stored subtree copies; any
	// upward or sibling axis could observe surroundings the view did
	// not materialize.
	if !queryDownwardOnly(q) {
		return nil, false
	}

	// Predicate containment: every view conjunct must be implied by a
	// query conjunct, else the view may be missing rows q needs.
	var qConjuncts []xpath.Expr
	if body.Where != nil {
		wp, ok := body.Where.(*xquery.Path)
		if !ok || len(wp.Docs) != 0 {
			return nil, false
		}
		qConjuncts = splitAnd(wp.X)
	}
	redundant := make([]bool, len(qConjuncts))
	for _, vc := range v.conjuncts {
		vcq := renameVar(vc, v.forVar, fc.Var)
		matched := false
		for i, qc := range qConjuncts {
			if !overVarOnly(qc, fc.Var) {
				continue
			}
			if implies(qc, vcq) {
				matched = true
				if qc.String() == vcq.String() {
					redundant[i] = true // already applied by the view
				}
			}
		}
		if !matched {
			return nil, false
		}
	}

	// Re-root the source on the view document. A wrapper view stores
	// the nodes matched by its last step as children of the view root,
	// so that step repeats; a full-copy view stores the document root
	// itself, so the whole path carries over.
	var newSteps []xpath.Step
	if v.whole {
		newSteps = steps
	} else {
		newSteps = append([]xpath.Step{steps[len(v.steps)-1]}, steps[len(v.steps):]...)
	}
	var kept []xpath.Expr
	for i, qc := range qConjuncts {
		if !redundant[i] {
			kept = append(kept, qc)
		}
	}
	var where xquery.Expr
	if len(kept) > 0 {
		where = &xquery.Path{X: joinAnd(kept)}
	}
	clauses := append([]xquery.Clause{
		xquery.ForClause{Var: fc.Var, Source: xquery.DocPath(viewDoc, newSteps...)},
	}, body.Clauses[1:]...)
	return &xquery.Query{Body: &xquery.FLWR{
		Clauses: clauses,
		Where:   where,
		Order:   body.Order,
		Return:  body.Return,
	}}, true
}

// docSteps deconstructs a path into its doc() root and location steps.
func docSteps(p *xquery.Path) (string, []xpath.Step, bool) {
	if len(p.Docs) != 1 {
		return "", nil, false
	}
	switch x := p.X.(type) {
	case xpath.VarRef:
		if !isDocVar(x, p.Docs[0]) {
			return "", nil, false
		}
		return p.Docs[0], nil, true
	case *xpath.PathExpr:
		v, ok := x.Filter.(xpath.VarRef)
		if !ok || !isDocVar(v, p.Docs[0]) {
			return "", nil, false
		}
		return p.Docs[0], x.Steps, true
	default:
		return "", nil, false
	}
}

// isDocVar reports whether v is the synthetic variable of doc(name).
// The parser names it "#doc:"+name; matching through DocPath keeps the
// prefix private to xquery.
func isDocVar(v xpath.VarRef, name string) bool {
	probe := xquery.DocPath(name)
	pv, _ := probe.X.(*xpath.PathExpr)
	return pv != nil && pv.Filter == xpath.VarRef(string(v))
}

// plainNameSteps accepts only child::name steps without predicates —
// the shapes whose materialization is re-addressable by path.
func plainNameSteps(steps []xpath.Step) bool {
	for _, s := range steps {
		if s.Axis != xpath.AxisChild || s.Test.Kind != xpath.TestName || len(s.Preds) > 0 {
			return false
		}
	}
	return true
}

func stepEqual(a, b xpath.Step) bool { return a.String() == b.String() }

// isVarOnly reports whether e is exactly the variable reference $v.
func isVarOnly(e xquery.Expr, v string) bool {
	p, ok := e.(*xquery.Path)
	if !ok || len(p.Docs) != 0 {
		return false
	}
	switch x := p.X.(type) {
	case xpath.VarRef:
		return string(x) == v
	case *xpath.PathExpr:
		vr, ok := x.Filter.(xpath.VarRef)
		return ok && string(vr) == v && len(x.Steps) == 0
	}
	return false
}

// overVarOnly reports whether every variable e references is v.
func overVarOnly(e xpath.Expr, v string) bool {
	for _, name := range xpath.Variables(e) {
		if name != v {
			return false
		}
	}
	return true
}

// splitAnd flattens nested top-level 'and' operators.
func splitAnd(e xpath.Expr) []xpath.Expr {
	if b, ok := e.(*xpath.BinaryExpr); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []xpath.Expr{e}
}

// joinAnd rebuilds a left-deep conjunction.
func joinAnd(es []xpath.Expr) xpath.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &xpath.BinaryExpr{Op: "and", L: out, R: e}
	}
	return out
}

// renameVar rebuilds e with variable `from` renamed to `to`.
func renameVar(e xpath.Expr, from, to string) xpath.Expr {
	switch v := e.(type) {
	case xpath.VarRef:
		if string(v) == from {
			return xpath.VarRef(to)
		}
		return v
	case *xpath.PathExpr:
		out := &xpath.PathExpr{Absolute: v.Absolute}
		if v.Filter != nil {
			out.Filter = renameVar(v.Filter, from, to)
		}
		for _, s := range v.Steps {
			ns := xpath.Step{Axis: s.Axis, Test: s.Test}
			for _, p := range s.Preds {
				ns.Preds = append(ns.Preds, renameVar(p, from, to))
			}
			out.Steps = append(out.Steps, ns)
		}
		return out
	case *xpath.BinaryExpr:
		return &xpath.BinaryExpr{Op: v.Op, L: renameVar(v.L, from, to), R: renameVar(v.R, from, to)}
	case *xpath.UnionExpr:
		out := &xpath.UnionExpr{}
		for _, p := range v.Paths {
			out.Paths = append(out.Paths, renameVar(p, from, to))
		}
		return out
	case *xpath.NegExpr:
		return &xpath.NegExpr{X: renameVar(v.X, from, to)}
	case *xpath.FuncCall:
		out := &xpath.FuncCall{Name: v.Name}
		for _, a := range v.Args {
			out.Args = append(out.Args, renameVar(a, from, to))
		}
		return out
	default:
		return e
	}
}

// implies reports whether conjunct q implies conjunct v (q ⊆ v as node
// filters): identical conjuncts, or comparisons of the same path
// against numeric literals where q's bound is at least as tight.
func implies(q, v xpath.Expr) bool {
	if q.String() == v.String() {
		return true
	}
	qb, ok1 := q.(*xpath.BinaryExpr)
	vb, ok2 := v.(*xpath.BinaryExpr)
	if !ok1 || !ok2 {
		return false
	}
	qn, ok1 := qb.R.(xpath.NumberLit)
	vn, ok2 := vb.R.(xpath.NumberLit)
	if !ok1 || !ok2 || qb.L.String() != vb.L.String() {
		return false
	}
	a, b := float64(qn), float64(vn)
	switch vb.Op {
	case "<":
		switch qb.Op {
		case "<":
			return a <= b
		case "<=", "=":
			return a < b
		}
	case "<=":
		switch qb.Op {
		case "<", "<=", "=":
			return a <= b
		}
	case ">":
		switch qb.Op {
		case ">":
			return a >= b
		case ">=", "=":
			return a > b
		}
	case ">=":
		switch qb.Op {
		case ">", ">=", "=":
			return a >= b
		}
	}
	return false
}

// downwardOnly reports whether every location step in e stays inside
// the subtree of its context node.
func downwardOnly(e xpath.Expr) bool {
	ok := true
	var walk func(xpath.Expr)
	walk = func(e xpath.Expr) {
		switch v := e.(type) {
		case *xpath.PathExpr:
			if v.Filter != nil {
				walk(v.Filter)
			}
			for _, s := range v.Steps {
				switch s.Axis {
				case xpath.AxisChild, xpath.AxisDescendant, xpath.AxisDescendantOrSelf,
					xpath.AxisSelf, xpath.AxisAttribute:
				default:
					ok = false
				}
				for _, p := range s.Preds {
					walk(p)
				}
			}
		case *xpath.BinaryExpr:
			walk(v.L)
			walk(v.R)
		case *xpath.UnionExpr:
			for _, p := range v.Paths {
				walk(p)
			}
		case *xpath.NegExpr:
			walk(v.X)
		case *xpath.FuncCall:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}

// queryDownwardOnly applies downwardOnly to every path of the query.
func queryDownwardOnly(q *xquery.Query) bool {
	ok := true
	var walk func(xquery.Expr)
	walk = func(e xquery.Expr) {
		switch v := e.(type) {
		case *xquery.Path:
			if !downwardOnly(v.X) {
				ok = false
			}
		case *xquery.FLWR:
			for _, c := range v.Clauses {
				switch cl := c.(type) {
				case xquery.ForClause:
					walk(cl.Source)
				case xquery.LetClause:
					walk(cl.Source)
				}
			}
			if v.Where != nil {
				walk(v.Where)
			}
			if v.Order != nil {
				walk(v.Order.Key)
			}
			walk(v.Return)
		case *xquery.Elem:
			for _, a := range v.Attrs {
				if a.Computed != nil {
					walk(a.Computed)
				}
			}
			for _, c := range v.Content {
				walk(c)
			}
		case *xquery.Seq:
			for _, it := range v.Items {
				walk(it)
			}
		}
	}
	walk(q.Body)
	return ok
}

// Rewrite returns the rewritings of q over every view that subsumes
// it, in view-name order. Candidates read the view document; callers
// (the optimizer rule) price them against the original plan.
func (m *Manager) Rewrite(q *xquery.Query) []*xquery.Query {
	var out []*xquery.Query
	for _, name := range m.names() {
		st, ok := m.lookup(name)
		if !ok || st.shape == nil {
			continue
		}
		if rw, ok := st.shape.rewrite(st.def.DocName(), q); ok {
			out = append(out, rw)
		}
	}
	return out
}

// RewriteBest returns the first applicable rewriting and the name of
// the view it reads, if any — the cost-blind entry point for
// single-peer deployments (wire servers) where any matching view is
// local and therefore profitable.
func (m *Manager) RewriteBest(q *xquery.Query) (*xquery.Query, string, bool) {
	for _, name := range m.names() {
		st, ok := m.lookup(name)
		if !ok || st.shape == nil {
			continue
		}
		if rw, ok := st.shape.rewrite(st.def.DocName(), q); ok {
			return rw, name, true
		}
	}
	return nil, "", false
}
