// View maintenance. Incremental views reuse xquery.DeltaFor: the base
// peer evaluates the view query only over source nodes that appeared
// since the last refresh (under its read lock, so concurrent updates
// are excluded) and ships just the new results to each placement —
// the ViP2P maintenance model. Every other shape falls back to full
// re-materialization at the placement peer. AutoRefresh subscribes to
// the base documents' change notifications so views follow updates
// without polling; Refresh/RefreshAll are the synchronous entry points
// tests and benchmarks drive deterministically.
package view

import (
	"fmt"

	"axml/internal/peer"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// Refresh brings every placement of the named view up to date with its
// base documents and returns the number of result trees shipped
// (incremental) or materialized (full refresh).
func (m *Manager) Refresh(name string) (int, error) {
	st, ok := m.lookup(name)
	if !ok {
		return 0, fmt.Errorf("view: no view %q", name)
	}
	return m.refreshState(st)
}

// RefreshAll refreshes every view (name order) and returns the total
// trees moved.
func (m *Manager) RefreshAll() (int, error) {
	total := 0
	for _, name := range m.names() {
		n, err := m.Refresh(name)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (m *Manager) refreshState(st *state) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	total := 0
	for _, p := range st.placements {
		n, err := m.refreshPlacement(st, p)
		total += n
		if err != nil {
			st.lastErr = err
			return total, fmt.Errorf("view %q: %w", st.def.Name, err)
		}
	}
	st.lastErr = nil
	return total, nil
}

// refreshPlacement updates one materialized copy. Callers hold st.mu.
func (m *Manager) refreshPlacement(st *state, p *placement) (int, error) {
	if p.inc != nil {
		host, ok := m.sys.Peer(p.baseAt)
		if !ok {
			return 0, fmt.Errorf("base peer %q is gone", p.baseAt)
		}
		var delta []*xmltree.Node
		err := host.SnapshotEval(func(resolve xquery.DocResolver) error {
			out, err := p.inc.DeltaWith(&xquery.Env{Resolve: resolve})
			delta = out
			return err
		})
		if err != nil {
			return 0, err
		}
		if len(delta) == 0 {
			return 0, nil
		}
		ref := peer.NodeRef{Peer: p.at, Node: p.root}
		if _, err := m.sys.ShipForest(p.baseAt, ref, delta, 0); err != nil {
			// Undelivered sources must be re-emitted by the next
			// refresh, or the view would silently lose these rows.
			p.inc.Rollback()
			return 0, err
		}
		return len(delta), nil
	}

	// Full re-materialization: re-run the query against the base host
	// and swap the placement's content.
	forest, err := m.evalFull(st, p.at)
	if err != nil {
		return 0, err
	}
	target, ok := m.sys.Peer(p.at)
	if !ok {
		return 0, fmt.Errorf("placement peer %q is gone", p.at)
	}
	if st.replica {
		// The document root itself is the view; swap the whole tree.
		root, err := viewRoot(st, forest)
		if err != nil {
			return 0, err
		}
		if err := target.RemoveDocument(st.def.DocName()); err != nil {
			return 0, err
		}
		if err := target.InstallDocument(st.def.DocName(), root); err != nil {
			return 0, err
		}
		p.root = root.ID
		return len(root.Children), nil
	}
	if err := target.ReplaceChildren(p.root, forest); err != nil {
		return 0, err
	}
	return len(forest), nil
}

// AutoRefresh subscribes every current and future placement to its
// base documents' change notifications; each change triggers a
// refresh of the affected view. Call Close to stop the watchers.
func (m *Manager) AutoRefresh() {
	m.mu.Lock()
	if m.auto {
		m.mu.Unlock()
		return
	}
	m.auto = true
	states := make([]*state, 0, len(m.views))
	for _, st := range m.views {
		states = append(states, st)
	}
	m.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		for _, p := range st.placements {
			m.watchPlacement(st, p)
		}
		st.mu.Unlock()
	}
}

// watchPlacement starts one watcher goroutine per base document of
// the placement when auto-refresh is on (a no-op otherwise, so new
// placements can call it unconditionally). Callers hold st.mu.
func (m *Manager) watchPlacement(st *state, p *placement) {
	m.mu.Lock()
	done, closed, auto := m.done, m.closed, m.auto
	m.mu.Unlock()
	if !auto || closed || len(p.cancels) > 0 {
		return
	}
	for _, base := range st.bases {
		hostID := p.baseAt
		if p.inc == nil {
			// Full-refresh views read their bases wherever they live.
			id, err := m.hostOf(base, p.at)
			if err != nil {
				continue
			}
			hostID = id
		}
		host, ok := m.sys.Peer(hostID)
		if !ok {
			continue
		}
		ch, cancel := host.Watch(base)
		p.cancels = append(p.cancels, cancel)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				select {
				case <-done:
					return
				case _, ok := <-ch:
					if !ok {
						return
					}
					_, _ = m.refreshState(st)
				}
			}
		}()
	}
}

// Close stops all auto-refresh watchers and waits for in-flight
// refreshes to finish. The materialized documents stay installed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.done)
	states := make([]*state, 0, len(m.views))
	for _, st := range m.views {
		states = append(states, st)
	}
	m.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		for _, p := range st.placements {
			for _, cancel := range p.cancels {
				cancel()
			}
			p.cancels = nil
		}
		st.mu.Unlock()
	}
	m.wg.Wait()
}
