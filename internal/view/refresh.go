// View maintenance. Incremental views reuse xquery.DeltaFor's delta
// provenance: the base peer evaluates the view query only over source
// nodes that appeared or changed since the last refresh (under its
// read lock, so concurrent updates are excluded) and ships just the
// difference to each placement — additions as new result trees,
// retractions as x:retract tombstones that remove exactly the view
// rows the vanished source had produced (node-id lineage, see
// placement.prov). This keeps views correct under deletions and
// in-place updates, beyond the insert-only fragment of Positive AXML.
// Every other query shape falls back to full re-materialization at the
// placement peer. AutoRefresh subscribes to the base documents' typed
// change notifications so views follow updates without polling;
// Refresh/RefreshAll are the synchronous entry points tests and
// benchmarks drive deterministically, and RefreshFull is the
// force-full baseline (admin healing; experiment E12 measures it
// against the provenance path on a churn workload).
package view

import (
	"context"
	"errors"
	"fmt"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/peer"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// Refresh brings every placement of the named view up to date with its
// base documents and returns the number of maintenance operations
// applied (result trees shipped plus retractions landed, or trees
// materialized on the full-refresh path).
func (m *Manager) Refresh(name string) (int, error) {
	return m.RefreshContext(context.Background(), name)
}

// RefreshContext is Refresh under a context: a done context stops the
// maintenance ships mid-refresh (the placement stays consistent — an
// aborted ship rolls the delta state back, so the next refresh
// re-derives what never landed).
func (m *Manager) RefreshContext(ctx context.Context, name string) (int, error) {
	st, ok := m.lookup(name)
	if !ok {
		return 0, fmt.Errorf("view: no view %q", name)
	}
	return m.refreshState(ctx, st)
}

// RefreshAll refreshes every view (name order) and returns the total
// operations applied.
func (m *Manager) RefreshAll() (int, error) {
	return m.RefreshAllContext(context.Background())
}

// RefreshAllContext is RefreshAll under a context.
func (m *Manager) RefreshAllContext(ctx context.Context) (int, error) {
	total := 0
	var errs []error
	for _, name := range m.names() {
		n, err := m.RefreshContext(ctx, name)
		total += n
		if err != nil {
			errs = append(errs, err)
		}
	}
	return total, errors.Join(errs...)
}

// RefreshFull re-materializes every placement of the named view from
// scratch, bypassing incremental maintenance: the full current result
// is shipped and the provenance state reset. It is the recovery path
// when a placement is suspected of divergence, and the baseline
// experiment E12 compares provenance-based maintenance against.
func (m *Manager) RefreshFull(name string) (int, error) {
	st, ok := m.lookup(name)
	if !ok {
		return 0, fmt.Errorf("view: no view %q", name)
	}
	return m.refreshStateWith(context.Background(), st, m.refreshPlacementFull)
}

// refreshState refreshes every placement of one view incrementally.
func (m *Manager) refreshState(ctx context.Context, st *state) (int, error) {
	return m.refreshStateWith(ctx, st, m.refreshPlacement)
}

// refreshStateWith runs one per-placement refresh function over every
// placement of a view. A failing placement does not abort the loop —
// the remaining placements are still refreshed and the failures are
// joined, so one unreachable replica cannot leave its siblings stale
// indefinitely.
func (m *Manager) refreshStateWith(ctx context.Context, st *state,
	refresh func(context.Context, *state, *placement) (int, error)) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.mode == ModeAdopted {
		// An adopted copy's base documents live in another deployment;
		// it is refreshed by re-shipping (cluster REPLICATE), never by
		// local maintenance.
		return 0, nil
	}
	total := 0
	var errs []error
	for _, p := range st.placements {
		n, err := refresh(ctx, st, p)
		total += n
		if err != nil {
			errs = append(errs, fmt.Errorf("placement %s: %w", p.at, err))
		}
	}
	err := errors.Join(errs...)
	st.lastErr = err
	if err != nil {
		return total, fmt.Errorf("view %q: %w", st.def.Name, err)
	}
	return total, nil
}

// refreshPlacement updates one materialized copy. Callers hold st.mu.
func (m *Manager) refreshPlacement(ctx context.Context, st *state, p *placement) (int, error) {
	if p.inc == nil || p.dirty {
		return m.refreshPlacementFull(ctx, st, p)
	}
	host, ok := m.sys.Peer(p.baseAt)
	if !ok {
		return 0, fmt.Errorf("base peer %q is gone", p.baseAt)
	}
	// Pin an epoch of the base store: the delta derives from a
	// consistent point-in-time view while base writers proceed.
	h := host.Snapshot()
	ev, err := p.inc.DeltaEventsWith(&xquery.Env{Resolve: h.Resolver()})
	h.Release()
	if err != nil {
		return 0, err
	}
	if ev.Empty() {
		return 0, nil
	}
	// Tombstones first, then additions: an in-place update retracts the
	// stale rows before its re-derived rows land, and the fresh rows
	// always end up as the trailing children of the view root (which is
	// what lets recordProv align them with their derivations).
	var forest []*xmltree.Node
	retracted := 0
	for _, k := range ev.Retractions {
		for _, id := range p.prov[k] {
			forest = append(forest, core.Retraction(id))
			retracted++
		}
	}
	added := ev.AddedTrees()
	forest = append(forest, added...)
	if len(forest) == 0 {
		// Every event concerned sources whose rows never materialized
		// (e.g. filtered out by the where clause); nothing to ship, but
		// the provenance bookkeeping below must still run.
		m.applyProv(p, ev)
		return 0, nil
	}
	ref := peer.NodeRef{Peer: p.at, Node: p.root}
	if _, err := m.sys.ShipForest(ctx, p.baseAt, ref, forest, 0); err != nil {
		// Undelivered events must be re-emitted by the next refresh, or
		// the view would silently lose these rows (or keep retracted
		// ones forever). When only the acknowledgment was lost the rows
		// DID land (netsim.ErrAckLost — a canceled reply leg): re-
		// shipping the delta would duplicate them, so the placement is
		// marked dirty and the next refresh rebuilds it from scratch.
		p.inc.Rollback()
		if errors.Is(err, netsim.ErrAckLost) {
			p.dirty = true
		}
		return 0, err
	}
	m.applyProv(p, ev)
	if err := m.recordProv(p, ev.Additions); err != nil {
		// The rows landed but their provenance is unknown: mark the
		// placement so the next refresh rebuilds it from scratch
		// rather than silently losing track of these rows.
		p.dirty = true
		return retracted + len(added), err
	}
	return retracted + len(added), nil
}

// applyProv drops the provenance entries of retracted sources.
func (m *Manager) applyProv(p *placement, ev *xquery.Events) {
	for _, k := range ev.Retractions {
		delete(p.prov, k)
	}
}

// recordProv maps freshly landed view rows back to the sources that
// produced them. Additions are always appended at the tail of the view
// root in derivation order (see refreshPlacement), so the trailing
// children line up with the flattened additions. Callers hold st.mu,
// which serializes all mutations of the view document.
func (m *Manager) recordProv(p *placement, adds []xquery.Derivation) error {
	total := 0
	for _, a := range adds {
		total += len(a.Results)
	}
	if total == 0 {
		return nil
	}
	host, ok := m.sys.Peer(p.at)
	if !ok {
		return fmt.Errorf("placement peer %q is gone", p.at)
	}
	kids, err := host.ChildIDs(p.root)
	if err != nil {
		return fmt.Errorf("reading landed rows: %w", err)
	}
	if len(kids) < total {
		return fmt.Errorf("landed %d rows, view holds %d", total, len(kids))
	}
	tail := kids[len(kids)-total:]
	i := 0
	for _, a := range adds {
		if len(a.Results) == 0 {
			continue
		}
		ids := make([]xmltree.NodeID, len(a.Results))
		copy(ids, tail[i:i+len(a.Results)])
		p.prov[a.Source] = ids
		i += len(a.Results)
	}
	return nil
}

// refreshPlacementFull re-materializes one placement from scratch.
// Incremental placements re-derive the full result at the base, clear
// the stored rows, ship the complete content (so the refresh pays
// full-materialization bytes, the honest baseline) and rebuild their
// provenance; recompute placements re-run the query through the normal
// evaluator. Callers hold st.mu.
func (m *Manager) refreshPlacementFull(ctx context.Context, st *state, p *placement) (int, error) {
	if p.inc != nil {
		host, ok := m.sys.Peer(p.baseAt)
		if !ok {
			return 0, fmt.Errorf("base peer %q is gone", p.baseAt)
		}
		target, ok := m.sys.Peer(p.at)
		if !ok {
			return 0, fmt.Errorf("placement peer %q is gone", p.at)
		}
		fresh, _ := xquery.NewDeltaFor(st.def.Query, nil)
		h := host.Snapshot()
		ev, err := fresh.DeltaEventsWith(&xquery.Env{Resolve: h.Resolver()})
		h.Release()
		if err != nil {
			return 0, err
		}
		if err := target.ReplaceChildren(p.root, nil); err != nil {
			return 0, err
		}
		p.inc, p.prov = fresh, map[xquery.Lineage][]xmltree.NodeID{}
		trees := ev.AddedTrees()
		if len(trees) > 0 {
			ref := peer.NodeRef{Peer: p.at, Node: p.root}
			if _, err := m.sys.ShipForest(ctx, p.baseAt, ref, trees, 0); err != nil {
				// The view is empty and nothing landed; rolling the
				// fresh provenance back to its blank state makes the
				// next (incremental) refresh re-derive and re-ship the
				// full content, so a transient failure here cannot
				// leave an empty view behind a clean refresh. If only
				// the ack was lost the forest DID land — stay dirty so
				// the next refresh clears the rows before re-shipping.
				fresh.Rollback()
				p.dirty = errors.Is(err, netsim.ErrAckLost)
				return 0, err
			}
			if err := m.recordProv(p, ev.Additions); err != nil {
				p.dirty = true
				return len(trees), err
			}
		}
		p.dirty = false
		return len(trees), nil
	}

	// Full re-materialization: re-run the query against the base host
	// and swap the placement's content.
	forest, err := m.evalFull(ctx, st, p.at)
	if err != nil {
		return 0, err
	}
	target, ok := m.sys.Peer(p.at)
	if !ok {
		return 0, fmt.Errorf("placement peer %q is gone", p.at)
	}
	if st.replica {
		// The document root itself is the view; swap the whole tree.
		// The old root is kept until the new one is installed: a
		// failure mid-swap reinstalls it, so the view document never
		// disappears from the placement peer.
		root, err := viewRoot(st, forest)
		if err != nil {
			return 0, err
		}
		docName := st.def.DocName()
		old, hadOld := target.Document(docName)
		if hadOld {
			if err := target.RemoveDocument(docName); err != nil {
				return 0, err
			}
		}
		if err := target.InstallDocument(docName, root); err != nil {
			if hadOld {
				if rbErr := target.InstallDocument(docName, old.Root); rbErr != nil {
					return 0, errors.Join(err,
						fmt.Errorf("reinstalling previous content: %w", rbErr))
				}
				// The old root kept its identifiers, so p.root is still
				// valid; the view is stale but present.
			}
			return 0, err
		}
		p.root = root.ID
		return len(root.Children), nil
	}
	if err := target.ReplaceChildren(p.root, forest); err != nil {
		return 0, err
	}
	return len(forest), nil
}

// AutoRefresh subscribes every current and future placement to its
// base documents' change notifications; each change triggers a
// refresh of the affected view. Call Close to stop the watchers.
func (m *Manager) AutoRefresh() {
	m.mu.Lock()
	if m.auto {
		m.mu.Unlock()
		return
	}
	m.auto = true
	states := make([]*state, 0, len(m.views))
	for _, st := range m.views {
		states = append(states, st)
	}
	m.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		for _, p := range st.placements {
			m.watchPlacement(st, p)
		}
		st.mu.Unlock()
	}
}

// watchPlacement starts one watcher goroutine per base document of
// the placement when auto-refresh is on (a no-op otherwise, so new
// placements can call it unconditionally). A base that cannot be
// watched — its host is gone or unlocatable — is recorded on the
// view's state and surfaced through Views()/Info.LastError instead of
// being skipped silently, so an auto-refresh that will never fire is
// visible. Callers hold st.mu.
func (m *Manager) watchPlacement(st *state, p *placement) {
	m.mu.Lock()
	done, closed, auto := m.done, m.closed, m.auto
	m.mu.Unlock()
	if !auto || closed || len(p.cancels) > 0 || st.mode == ModeAdopted {
		return
	}
	for _, base := range st.bases {
		hostID := p.baseAt
		if p.inc == nil {
			// Full-refresh views read their bases wherever they live.
			id, err := m.hostOf(base, p.at)
			if err != nil {
				st.lastErr = fmt.Errorf("auto-refresh for placement %s: %w", p.at, err)
				continue
			}
			hostID = id
		}
		host, ok := m.sys.Peer(hostID)
		if !ok {
			st.lastErr = fmt.Errorf("auto-refresh for placement %s: base peer %q is gone", p.at, hostID)
			continue
		}
		ch, cancel := host.Watch(base)
		p.cancels = append(p.cancels, cancel)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				select {
				case <-done:
					return
				case _, ok := <-ch:
					if !ok {
						return
					}
					// The manager's context bounds auto-refresh work:
					// Close cancels it, stopping in-flight ships.
					_, _ = m.refreshState(m.ctx, st)
				}
			}
		}()
	}
}

// Close stops all auto-refresh watchers and waits for in-flight
// refreshes to finish. The materialized documents stay installed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cancel()
	close(m.done)
	states := make([]*state, 0, len(m.views))
	for _, st := range m.views {
		states = append(states, st)
	}
	m.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		for _, p := range st.placements {
			for _, cancel := range p.cancels {
				cancel()
			}
			p.cancels = nil
		}
		st.mu.Unlock()
	}
	m.wg.Wait()
}
