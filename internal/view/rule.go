package view

import (
	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/rewrite"
)

// Rule adapts a Manager to the optimizer's rewrite.Rule interface:
// wherever the plan search reaches a query expression some view
// subsumes, it offers the view-reading rewriting as an alternative.
// The search then prices it with the shared estimator — the view
// document resolves through the same catalog the evaluator uses, so
// "read view@local" competes with "ship from base@remote" (and with
// delegating the rewritten query to the view's peer) on real link
// costs.
type Rule struct{ M *Manager }

// Rule returns the manager's optimizer rule. Pass it through
// opt.Options.ExtraRules (the axml facade does this automatically).
func (m *Manager) Rule() rewrite.Rule { return Rule{M: m} }

// Name implements rewrite.Rule.
func (Rule) Name() string { return "useView" }

// Apply implements rewrite.Rule.
func (r Rule) Apply(e core.Expr, at netsim.PeerID, ctx *rewrite.Context) []core.Expr {
	q, ok := e.(*core.Query)
	if !ok || len(q.Args) != 0 || q.Q.Arity() != 0 {
		return nil
	}
	var out []core.Expr
	for _, rw := range r.M.Rewrite(q.Q) {
		out = append(out, &core.Query{Q: rw, At: at})
	}
	return out
}
