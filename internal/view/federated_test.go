package view_test

import (
	"context"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/session"
	"axml/internal/view"
	"axml/internal/workload"
)

var fedWAN = netsim.Link{LatencyMs: 20, BytesPerMs: 200}

// srcSystem builds a one-peer "data" system hosting a generated
// catalog — the shipping deployment.
func srcSystem(t *testing.T, items int) *core.System {
	t.Helper()
	net := netsim.New()
	netsim.Uniform(net, []netsim.PeerID{"data"}, fedWAN)
	sys := core.NewSystem(net)
	data := sys.MustAddPeer("data")
	if err := data.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: items, PriceMax: 1000, DescWords: 4, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	return sys
}

// emptySystem builds a one-peer system with no documents — the
// receiving deployment of a federated ship.
func emptySystem(t *testing.T, id netsim.PeerID) *core.System {
	t.Helper()
	net := netsim.New()
	netsim.Uniform(net, []netsim.PeerID{id}, fedWAN)
	sys := core.NewSystem(net)
	sys.MustAddPeer(id)
	return sys
}

// TestAdoptServesSelectionView: a selection view materialized in one
// deployment, shipped (Materialized) and adopted in another, answers
// matching queries there even though the base document never existed
// in the adopting system.
func TestAdoptServesSelectionView(t *testing.T) {
	src := srcSystem(t, 80)
	defer src.Close()
	mSrc := view.NewManager(src)
	defer mSrc.Close()
	vq := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := mSrc.Define("cheap", vq, "data"); err != nil {
		t.Fatal(err)
	}
	mv, err := mSrc.Materialized("cheap")
	if err != nil {
		t.Fatal(err)
	}
	if mv.Replica {
		t.Error("a selection view must not ship as a base replica")
	}

	dst := emptySystem(t, "b")
	defer dst.Close()
	mDst := view.NewManager(dst)
	defer mDst.Close()
	if err := mDst.Adopt("cheap", mv.Query, "b", mv.Root, "memberA"); err != nil {
		t.Fatal(err)
	}

	infos := mDst.Views()
	if len(infos) != 1 || infos[0].Mode != view.ModeAdopted || infos[0].Origin != "memberA" {
		t.Fatalf("views after adopt: %+v", infos)
	}
	sites, ok := mDst.PlacementsOf("cheap")
	if !ok || len(sites) != 1 || sites[0] != "b" {
		t.Fatalf("placements = %v ok=%v", sites, ok)
	}

	// A query subsumed by the view rewrites onto the adopted copy; the
	// base document does not exist here, so a correct answer proves the
	// rewrite happened.
	sess, err := session.NewLocal(dst, mDst, "b")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(context.Background(),
		`for $i in doc("catalog")/item where $i/price < 100 return $i`)
	if err != nil {
		t.Fatalf("query over adopted view: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("adopted view answered no rows for a matching query")
	}
}

// TestAdoptFullCopyRegistersBaseClass: a whole-document view adopts as
// a base replica, so plain doc("catalog") queries at the adopting
// deployment land on the copy transparently.
func TestAdoptFullCopyRegistersBaseClass(t *testing.T) {
	src := srcSystem(t, 40)
	defer src.Close()
	mSrc := view.NewManager(src)
	defer mSrc.Close()
	if err := mSrc.Define("copy", `doc("catalog")`, "data"); err != nil {
		t.Fatal(err)
	}
	mv, err := mSrc.Materialized("copy")
	if err != nil {
		t.Fatal(err)
	}
	if !mv.Replica {
		t.Fatal("a whole-document view must ship as a base replica")
	}

	dst := emptySystem(t, "b")
	defer dst.Close()
	mDst := view.NewManager(dst)
	defer mDst.Close()
	if err := mDst.Adopt("copy", mv.Query, "b", mv.Root, "memberA"); err != nil {
		t.Fatal(err)
	}
	sess, err := session.NewLocal(dst, mDst, "b")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(context.Background(), `doc("catalog")/item/name`)
	if err != nil {
		t.Fatalf("base-class query over adopted replica: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Errorf("base-class query rows = %d, want 40", n)
	}
}

// TestAdoptedViewSkipsRefresh: refresh over an adopted view is a no-op
// (the base lives in another deployment), and a re-adopt at the same
// peer swaps the content in place — the federated freshness path.
func TestAdoptedViewSkipsRefresh(t *testing.T) {
	src := srcSystem(t, 30)
	defer src.Close()
	mSrc := view.NewManager(src)
	defer mSrc.Close()
	if err := mSrc.Define("copy", `doc("catalog")`, "data"); err != nil {
		t.Fatal(err)
	}
	mv, err := mSrc.Materialized("copy")
	if err != nil {
		t.Fatal(err)
	}

	dst := emptySystem(t, "b")
	defer dst.Close()
	mDst := view.NewManager(dst)
	defer mDst.Close()
	if err := mDst.Adopt("copy", mv.Query, "b", mv.Root, "memberA"); err != nil {
		t.Fatal(err)
	}
	if n, err := mDst.Refresh("copy"); err != nil || n != 0 {
		t.Fatalf("refresh of adopted view = (%d, %v), want no-op", n, err)
	}

	// Grow the source and re-ship: the adopted copy swaps in place.
	data, _ := src.Peer("data")
	if err := data.RemoveDocument("catalog"); err != nil {
		t.Fatal(err)
	}
	if err := data.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: 50, PriceMax: 1000, DescWords: 4, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	if _, err := mSrc.RefreshFull("copy"); err != nil {
		t.Fatal(err)
	}
	mv2, err := mSrc.Materialized("copy")
	if err != nil {
		t.Fatal(err)
	}
	gen := mDst.Generation()
	if err := mDst.Adopt("copy", mv2.Query, "b", mv2.Root, "memberA"); err != nil {
		t.Fatalf("re-adopt: %v", err)
	}
	if mDst.Generation() == gen {
		t.Error("re-adopt must bump the catalog generation")
	}
	sess, err := session.NewLocal(dst, mDst, "b")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(context.Background(), `doc("catalog")/item/name`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("rows after re-ship = %d, want 50", n)
	}

	// Dropping the adopted placement removes the copy cleanly.
	if err := mDst.DropPlacement("copy", "b"); err != nil {
		t.Fatal(err)
	}
	if sites, ok := mDst.PlacementsOf("copy"); ok && len(sites) > 0 {
		t.Errorf("placements after drop = %v", sites)
	}
}

// TestAdoptRejectsConflicts: adopting over a locally materialized view
// or with a different defining query is refused.
func TestAdoptRejectsConflicts(t *testing.T) {
	sys := srcSystem(t, 20)
	defer sys.Close()
	m := view.NewManager(sys)
	defer m.Close()
	vq := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", vq, "data"); err != nil {
		t.Fatal(err)
	}
	mv, err := m.Materialized("cheap")
	if err != nil {
		t.Fatal(err)
	}
	err = m.Adopt("cheap", mv.Query, "data", mv.Root, "other")
	if err == nil || !strings.Contains(err.Error(), "refusing to adopt") {
		t.Errorf("adopt over local view: %v", err)
	}
	err = m.Adopt("cheap2", mv.Query, "data", mv.Root, "other")
	if err != nil {
		t.Fatal(err)
	}
	err = m.Adopt("cheap2", `doc("catalog")`, "data", mv.Root, "other")
	if err == nil || !strings.Contains(err.Error(), "different query") {
		t.Errorf("adopt with different query: %v", err)
	}
}
