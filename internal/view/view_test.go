package view

import (
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/opt"
	"axml/internal/rewrite"
	"axml/internal/workload"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// wan is the cross-peer link profile of the tests: expensive enough
// that shipping a catalog visibly dominates.
var wan = netsim.Link{LatencyMs: 20, BytesPerMs: 200}

// testSystem builds client+data on a WAN with a catalog at data.
func testSystem(t *testing.T, items int) *core.System {
	t.Helper()
	net := netsim.New()
	netsim.Uniform(net, []netsim.PeerID{"client", "data"}, wan)
	sys := core.NewSystem(net)
	sys.MustAddPeer("client")
	data := sys.MustAddPeer("data")
	if err := data.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: items, PriceMax: 1000, DescWords: 4, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	return sys
}

func viewTrees(t *testing.T, sys *core.System, at netsim.PeerID, name string) []*xmltree.Node {
	t.Helper()
	p, ok := sys.Peer(at)
	if !ok {
		t.Fatalf("no peer %s", at)
	}
	d, ok := p.Document(DocPrefix + name)
	if !ok {
		t.Fatalf("view document %q missing at %s", DocPrefix+name, at)
	}
	return d.Root.Children
}

func TestDefineMaterializesAtPlacement(t *testing.T) {
	sys := testSystem(t, 120)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("cheap",
		`for $i in doc("catalog")/item where $i/price < 500 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	kids := viewTrees(t, sys, "client", "cheap")
	if len(kids) == 0 {
		t.Fatal("view materialized empty")
	}
	for _, k := range kids {
		if k.Label != "item" {
			t.Fatalf("view stores %q, want item trees", k.Label)
		}
	}
	if st := sys.Net.Stats(); st.Bytes == 0 {
		t.Error("materialization over the WAN should be network-charged")
	}
	infos := m.Views()
	if len(infos) != 1 || infos[0].Name != "cheap" || infos[0].Mode != "incremental" ||
		infos[0].Trees != len(kids) {
		t.Errorf("Views() = %+v", infos)
	}
}

func TestReplicaViewServesDocAny(t *testing.T) {
	sys := testSystem(t, 60)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("catcopy", `doc("catalog")`, "client"); err != nil {
		t.Fatal(err)
	}
	before := sys.Net.Stats().Bytes

	// d@any resolution must find the local full copy: no traffic.
	res, err := sys.Eval("client", &core.Doc{Name: "catalog", At: core.AnyPeer})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Net.Stats().Bytes - before; got != 0 {
		t.Errorf("d@any with a local replica view moved %d bytes, want 0", got)
	}
	data, _ := sys.Peer("data")
	orig, _ := data.Document("catalog")
	if len(res.Forest) != 1 || !xmltree.Equal(res.Forest[0], orig.Root) {
		t.Error("replica view content differs from the base document")
	}
}

func TestDuplicateAndInvalidDefinitions(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item return $i`
	if err := m.Define("v", src, "client"); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("v", src, "client"); err == nil {
		t.Error("same placement twice should fail")
	}
	if err := m.Define("v", `for $i in doc("catalog")/item where $i/price < 3 return $i`, "data"); err == nil {
		t.Error("same name with a different query should fail")
	}
	if err := m.Define("v", src, "data"); err != nil {
		t.Errorf("second placement of the same query should succeed: %v", err)
	}
	if got := len(m.Views()[0].Placements); got != 2 {
		t.Errorf("placements = %d, want 2", got)
	}
	if err := m.Define("w", `param $p; for $i in $p return $i`, "client"); err == nil {
		t.Error("parameterized view should fail")
	}
	if err := m.Define("w", src, "nowhere"); err == nil {
		t.Error("unknown placement peer should fail")
	}
}

func TestDropView(t *testing.T) {
	sys := testSystem(t, 20)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("tmp", `doc("catalog")`, "client"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("tmp"); err != nil {
		t.Fatal(err)
	}
	client, _ := sys.Peer("client")
	if client.HasDocument(DocPrefix + "tmp") {
		t.Error("view document survived Drop")
	}
	if _, err := sys.Generics.ResolveDoc("client", DocPrefix+"tmp"); err == nil {
		t.Error("catalog registration survived Drop")
	}
	if _, err := sys.Generics.ResolveDoc("client", "catalog"); err == nil {
		t.Error("base-class registration survived Drop")
	}
	if err := m.Drop("tmp"); err == nil {
		t.Error("double Drop should fail")
	}
}

// TestOptimizerPicksLocalView is the acceptance check of the view
// subsystem: with a view materialized at the client, opt.Optimize must
// prefer reading it over any plan that ships base data from the remote
// peer — and the chosen plan must produce the same answer.
func TestOptimizerPicksLocalView(t *testing.T) {
	sys := testSystem(t, 200)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("cheap",
		`for $i in doc("catalog")/item where $i/price < 300 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	q := xquery.MustParse(
		`for $i in doc("catalog")/item where $i/price < 100 return <hit>{$i/name}</hit>`)
	e := &core.Query{Q: q, At: "client"}

	withView, _, err := opt.Optimize(sys, "client", e, opt.Options{
		ExtraRules: []rewrite.Rule{m.Rule()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withView.Expr.String(), DocPrefix+"cheap") {
		t.Fatalf("best plan does not read the view: %s", withView)
	}
	usedRule := false
	for _, d := range withView.Derivation {
		if strings.Contains(d, "useView") {
			usedRule = true
		}
	}
	if !usedRule {
		t.Errorf("derivation missing useView: %v", withView.Derivation)
	}

	noView, _, err := opt.Optimize(sys, "client", e, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withView.Cost >= noView.Cost {
		t.Errorf("local view plan should be cheaper: %.2f vs %.2f", withView.Cost, noView.Cost)
	}

	// The two best plans must agree with the naive evaluation.
	naive, err := sys.Eval("client", e)
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Net.Stats().Bytes
	got, err := sys.Eval("client", withView.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if moved := sys.Net.Stats().Bytes - before; moved != 0 {
		t.Errorf("view plan moved %d bytes, want 0 (view is local)", moved)
	}
	if len(got.Forest) != len(naive.Forest) || len(got.Forest) == 0 {
		t.Fatalf("view plan answer differs: %d vs %d trees", len(got.Forest), len(naive.Forest))
	}
	for i := range got.Forest {
		if !xmltree.Equal(got.Forest[i], naive.Forest[i]) {
			t.Fatalf("tree %d differs:\n%s\nvs\n%s", i,
				xmltree.Serialize(got.Forest[i]), xmltree.Serialize(naive.Forest[i]))
		}
	}
}

// TestOptimizerSkipsRemoteViewOnCheapLink checks the other side of the
// trade-off: when the base document is local and the view remote, the
// optimizer must not chase the view.
func TestOptimizerSkipsUselessView(t *testing.T) {
	sys := testSystem(t, 100)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	// View placed at the data peer itself; a client query should still
	// prefer whatever the base rules choose over fetching the view when
	// both live at data — but crucially the rewritten plan must never
	// be *forced*. Here we only assert Optimize does not error and the
	// answer stays correct.
	if err := m.Define("all",
		`for $i in doc("catalog")/item return $i`, "data"); err != nil {
		t.Fatal(err)
	}
	q := xquery.MustParse(
		`for $i in doc("catalog")/item where $i/price < 50 return $i/name`)
	e := &core.Query{Q: q, At: "client"}
	plan, _, err := opt.Optimize(sys, "client", e, opt.Options{
		ExtraRules: []rewrite.Rule{m.Rule()},
	})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := sys.Eval("client", e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Eval("client", plan.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Forest) != len(naive.Forest) {
		t.Errorf("optimized plan answer differs: %d vs %d", len(got.Forest), len(naive.Forest))
	}
}
