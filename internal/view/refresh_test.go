package view

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/peer"
	"axml/internal/workload"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

func addItem(t testing.TB, sys *core.System, at netsim.PeerID, doc string, price int, name string) {
	t.Helper()
	p, _ := sys.Peer(at)
	d, ok := p.Document(doc)
	if !ok {
		t.Fatalf("no document %q at %s", doc, at)
	}
	item := xmltree.E("item",
		xmltree.E("name", xmltree.T(name)),
		xmltree.E("price", xmltree.T(fmt.Sprint(price))))
	if err := p.AddChild(d.Root.ID, item); err != nil {
		t.Fatal(err)
	}
}

// expectedTrees evaluates the view query directly against the base
// peer's store — the ground truth a fresh materialization would hold.
func expectedTrees(t testing.TB, sys *core.System, at netsim.PeerID, src string) []*xmltree.Node {
	t.Helper()
	p, _ := sys.Peer(at)
	out, err := p.RunQuery(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sameMultiset compares two forests by canonical hash, order-blind.
func sameMultiset(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[xmltree.Digest]int{}
	for _, n := range a {
		counts[xmltree.Hash(n)]++
	}
	for _, n := range b {
		counts[xmltree.Hash(n)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestIncrementalRefreshStaysConsistent(t *testing.T) {
	sys := testSystem(t, 80)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	if m.Views()[0].Mode != "incremental" {
		t.Fatalf("expected incremental mode, got %s", m.Views()[0].Mode)
	}

	addItem(t, sys, "data", "catalog", 5, "matching-a")
	addItem(t, sys, "data", "catalog", 999, "too-expensive")
	addItem(t, sys, "data", "catalog", 120, "matching-b")

	before := sys.Net.Stats().Bytes
	shipped, err := m.Refresh("cheap")
	if err != nil {
		t.Fatal(err)
	}
	if shipped != 2 {
		t.Errorf("refresh shipped %d trees, want 2", shipped)
	}
	deltaBytes := sys.Net.Stats().Bytes - before
	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	if full := int64(catalog.Root.ByteSize()); deltaBytes >= full {
		t.Errorf("incremental refresh moved %d bytes, full doc is %d", deltaBytes, full)
	}

	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view diverged from its definition after incremental refresh")
	}

	// A second refresh with no base change ships nothing.
	if n, err := m.Refresh("cheap"); err != nil || n != 0 {
		t.Errorf("idle refresh shipped %d (err %v), want 0", n, err)
	}
}

func TestFullRefreshFallback(t *testing.T) {
	sys := testSystem(t, 40)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	// A let-first aggregation is not incrementalizable: the manager
	// must fall back to full re-materialization.
	src := `let $all := doc("catalog")/item return <summary n="{count($all)}"/>`
	if err := m.Define("stats", src, "client"); err != nil {
		t.Fatal(err)
	}
	if m.Views()[0].Mode != "recompute" {
		t.Fatalf("expected recompute mode, got %s", m.Views()[0].Mode)
	}
	check := func() {
		kids := viewTrees(t, sys, "client", "stats")
		if len(kids) != 1 {
			t.Fatalf("summary view has %d trees", len(kids))
		}
		want := expectedTrees(t, sys, "data", src)
		if !sameMultiset(kids, want) {
			t.Errorf("summary stale: have %s want %s",
				xmltree.Serialize(kids[0]), xmltree.Serialize(want[0]))
		}
	}
	check()
	addItem(t, sys, "data", "catalog", 10, "later")
	addItem(t, sys, "data", "catalog", 20, "even-later")
	if _, err := m.Refresh("stats"); err != nil {
		t.Fatal(err)
	}
	check()
}

func TestReplicaViewFullRefresh(t *testing.T) {
	sys := testSystem(t, 15)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("copy", `doc("catalog")`, "client"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 42, "fresh")
	if _, err := m.Refresh("copy"); err != nil {
		t.Fatal(err)
	}
	client, _ := sys.Peer("client")
	data, _ := sys.Peer("data")
	cp, _ := client.Document(DocPrefix + "copy")
	orig, _ := data.Document("catalog")
	if !xmltree.Equal(cp.Root, orig.Root) {
		t.Error("replica view stale after full refresh")
	}
	// The reinstalled root must still resolve through d@any.
	if _, err := sys.Eval("client", &core.Doc{Name: "catalog", At: core.AnyPeer}); err != nil {
		t.Errorf("d@any after replica refresh: %v", err)
	}
}

// TestAutoRefreshConcurrentUpdates races concurrent base-document
// writers against watcher-driven view maintenance; run under -race.
// After the writers finish and the manager quiesces, one final
// synchronous refresh must leave the view exactly consistent.
func TestAutoRefreshConcurrentUpdates(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	m.AutoRefresh()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				addItem(t, sys, "data", "catalog", (w*perWriter+i)%1000,
					fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	m.Close() // stop watchers, join in-flight refreshes

	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view inconsistent after concurrent updates")
	}
}

func TestRefreshAllCoversEveryView(t *testing.T) {
	sys := testSystem(t, 20)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("a", `for $i in doc("catalog")/item where $i/price < 500 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("b", `for $i in doc("catalog")/item where $i/price >= 500 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 100, "cheap-one")
	addItem(t, sys, "data", "catalog", 900, "dear-one")
	n, err := m.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("RefreshAll moved %d trees, want 2", n)
	}
}

// TestFailedShipIsRetried regression-tests delta delivery: a refresh
// whose ship fails (placement peer down) must re-emit the same rows
// once the peer returns, not lose them.
func TestFailedShipIsRetried(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 7, "fragile")
	sys.Net.SetDown("client", true)
	if _, err := m.Refresh("cheap"); err == nil {
		t.Fatal("refresh to a down peer should fail")
	}
	sys.Net.SetDown("client", false)
	n, err := m.Refresh("cheap")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("retry shipped %d trees, want the 1 lost in the failed refresh", n)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view lost rows across the failed ship")
	}
}

// TestFailedDefineLeavesNoGhost regression-tests definition rollback:
// a Define whose materialization fails must not leave a view state
// that rewrites queries onto a never-installed document.
func TestFailedDefineLeavesNoGhost(t *testing.T) {
	sys := testSystem(t, 5)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("nosuchdoc")/item return $i`
	if err := m.Define("ghost", src, "client"); err == nil {
		t.Fatal("defining over a missing base should fail")
	}
	if len(m.Views()) != 0 {
		t.Fatalf("failed define left state: %+v", m.Views())
	}
	if _, _, ok := m.RewriteBest(xquery.MustParse(
		`for $i in doc("nosuchdoc")/item where $i/p < 1 return $i`)); ok {
		t.Error("ghost view still rewrites queries")
	}
	// Once the base exists, the same definition must succeed.
	p, _ := sys.Peer("data")
	if err := p.InstallDocument("nosuchdoc", xmltree.MustParse(`<d><item><p>0</p></item></d>`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("ghost", src, "client"); err != nil {
		t.Errorf("re-define after installing the base: %v", err)
	}
}

// churnSystem is testSystem with an extra placement peer, for tests
// that exercise several placements of one view.
func churnSystem(t *testing.T, items int, peers ...netsim.PeerID) *core.System {
	t.Helper()
	net := netsim.New()
	netsim.Uniform(net, peers, wan)
	sys := core.NewSystem(net)
	var data *peer.Peer
	for _, id := range peers {
		p := sys.MustAddPeer(id)
		if id == "data" {
			data = p
		}
	}
	if data == nil {
		t.Fatal("churnSystem needs a data peer")
	}
	if err := data.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: items, PriceMax: 1000, DescWords: 4, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	return sys
}

// matchingItemID returns a base item the view predicate (price < 500)
// selects, so deleting or updating it must be visible in the view.
func matchingItemID(t *testing.T, sys *core.System) xmltree.NodeID {
	t.Helper()
	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	for _, it := range catalog.Root.ChildElementsByLabel("item") {
		if p := it.FirstChildElement("price"); p != nil {
			var v int
			fmt.Sscanf(p.TextContent(), "%d", &v)
			if v < 500 {
				return it.ID
			}
		}
	}
	t.Fatal("no matching item in the catalog")
	return 0
}

func TestDeletionRetractsAtEveryPlacement(t *testing.T) {
	sys := churnSystem(t, 60, "client", "mirror", "data")
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("cheap", src, "mirror"); err != nil {
		t.Fatal(err)
	}

	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	victim := matchingItemID(t, sys)
	if err := data.RemoveChildByID(catalog.Root.ID, victim); err != nil {
		t.Fatal(err)
	}
	n, err := m.Refresh("cheap")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deletion applied %d maintenance ops, want 1 retraction per placement", n)
	}
	want := expectedTrees(t, sys, "data", src)
	for _, at := range []netsim.PeerID{"client", "mirror"} {
		if !sameMultiset(viewTrees(t, sys, at, "cheap"), want) {
			t.Errorf("placement at %s kept the deleted row", at)
		}
	}
	// Idle refresh after the retraction ships nothing.
	if n, err := m.Refresh("cheap"); err != nil || n != 0 {
		t.Errorf("idle refresh = %d ops (err %v), want 0", n, err)
	}
}

func TestInPlaceUpdateRederivesExactlyOnce(t *testing.T) {
	sys := testSystem(t, 40)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	victim := matchingItemID(t, sys)
	repl := xmltree.E("item",
		xmltree.E("name", xmltree.T("updated-in-place")),
		xmltree.E("price", xmltree.T("77")))
	if err := data.ReplaceChildByID(catalog.Root.ID, victim, repl); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, row := range viewTrees(t, sys, "client", "cheap") {
		if n := row.FirstChildElement("name"); n != nil && n.TextContent() == "updated-in-place" {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("updated row derived %d times, want exactly once", seen)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view diverged after in-place update")
	}
}

// TestChurnConvergence is the property test of the maintenance spine:
// under a seeded random workload of inserts, deletions and in-place
// updates, a view maintained through DeltaEvents must converge to
// exactly the content a full re-materialization would produce.
func TestChurnConvergence(t *testing.T) {
	for _, seed := range []int64{3, 17, 51} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sys := testSystem(t, 50)
			defer sys.Close()
			m := NewManager(sys)
			defer m.Close()

			src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
			if err := m.Define("cheap", src, "client"); err != nil {
				t.Fatal(err)
			}
			data, _ := sys.Peer("data")
			catalog, _ := data.Document("catalog")
			var live []xmltree.NodeID
			for _, it := range catalog.Root.ChildElementsByLabel("item") {
				live = append(live, it.ID)
			}
			rng := rand.New(rand.NewSource(seed))
			item := func(n int) *xmltree.Node {
				return xmltree.E("item",
					xmltree.E("name", xmltree.T(fmt.Sprintf("churn-%d", n))),
					xmltree.E("price", xmltree.T(fmt.Sprint(rng.Intn(1000)))))
			}
			for round, serial := 0, 0; round < 8; round++ {
				for op := 0; op < 12; op++ {
					switch k := rng.Intn(3); {
					case k == 0 || len(live) < 2:
						it := item(serial)
						serial++
						if err := data.AddChild(catalog.Root.ID, it); err != nil {
							t.Fatal(err)
						}
						live = append(live, it.ID)
					case k == 1:
						i := rng.Intn(len(live))
						if err := data.RemoveChildByID(catalog.Root.ID, live[i]); err != nil {
							t.Fatal(err)
						}
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					default:
						i := rng.Intn(len(live))
						it := item(serial)
						serial++
						if err := data.ReplaceChildByID(catalog.Root.ID, live[i], it); err != nil {
							t.Fatal(err)
						}
						live[i] = it.ID
					}
				}
				if _, err := m.Refresh("cheap"); err != nil {
					t.Fatal(err)
				}
				if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
					t.Fatalf("round %d: view diverged from full re-materialization", round)
				}
			}
		})
	}
}

func TestRefreshContinuesPastFailingPlacement(t *testing.T) {
	sys := churnSystem(t, 30, "client", "mirror", "data")
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("cheap", src, "mirror"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 9, "reaches-client")
	sys.Net.SetDown("mirror", true)
	_, err := m.Refresh("cheap")
	if err == nil {
		t.Fatal("refresh with a down placement should report the failure")
	}
	// The healthy placement was still refreshed — a failing sibling no
	// longer starves it.
	want := expectedTrees(t, sys, "data", src)
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), want) {
		t.Error("healthy placement left stale by a failing sibling")
	}
	if lastErr := m.Views()[0].LastError; lastErr == "" {
		t.Error("failure not surfaced in Info.LastError")
	}
	sys.Net.SetDown("mirror", false)
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "mirror", "cheap"), want) {
		t.Error("recovered placement did not converge")
	}
	if lastErr := m.Views()[0].LastError; lastErr != "" {
		t.Errorf("stale LastError after recovery: %s", lastErr)
	}
}

func TestUnwatchableBaseSurfacesInInfo(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	// A recompute-mode view watches its base wherever it lives; once
	// the base is gone, auto-refresh can never fire and must say so.
	src := `let $all := doc("catalog")/item return <summary n="{count($all)}"/>`
	if err := m.Define("stats", src, "client"); err != nil {
		t.Fatal(err)
	}
	data, _ := sys.Peer("data")
	if err := data.RemoveDocument("catalog"); err != nil {
		t.Fatal(err)
	}
	m.AutoRefresh()
	if lastErr := m.Views()[0].LastError; lastErr == "" {
		t.Error("unwatchable base not surfaced via Views()")
	}
}

func TestRefreshFullHeals(t *testing.T) {
	sys := testSystem(t, 30)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the materialization behind the manager's back.
	client, _ := sys.Peer("client")
	vdoc, _ := client.Document(DocPrefix + "cheap")
	if err := client.AddChild(vdoc.Root.ID, xmltree.E("bogus")); err != nil {
		t.Fatal(err)
	}
	// Incremental refresh sees no base change and keeps the corruption.
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	want := expectedTrees(t, sys, "data", src)
	if sameMultiset(viewTrees(t, sys, "client", "cheap"), want) {
		t.Fatal("corruption unexpectedly gone before RefreshFull")
	}
	if _, err := m.RefreshFull("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), want) {
		t.Error("RefreshFull did not restore the view")
	}
	// And incremental maintenance keeps working after the heal.
	addItem(t, sys, "data", "catalog", 3, "post-heal")
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("incremental refresh diverged after RefreshFull")
	}
}

// TestAutoRefreshChurnRace mixes concurrent inserts, deletions and
// in-place updates with watcher-driven maintenance; run under -race.
// Each writer owns the items it created, so the ops never collide.
func TestAutoRefreshChurnRace(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	m.AutoRefresh()

	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	rootID := catalog.Root.ID

	const writers, perWriter = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []xmltree.NodeID
			for i := 0; i < perWriter; i++ {
				item := xmltree.E("item",
					xmltree.E("name", xmltree.T(fmt.Sprintf("w%d-%d", w, i))),
					xmltree.E("price", xmltree.T(fmt.Sprint((w*perWriter+i*13)%1000))))
				if err := data.AddChild(rootID, item); err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, item.ID)
				switch {
				case i%3 == 1 && len(mine) > 1:
					if err := data.RemoveChildByID(rootID, mine[0]); err != nil {
						t.Error(err)
						return
					}
					mine = mine[1:]
				case i%3 == 2:
					repl := xmltree.E("item",
						xmltree.E("name", xmltree.T(fmt.Sprintf("w%d-%d-v2", w, i))),
						xmltree.E("price", xmltree.T(fmt.Sprint((w+i*7)%1000))))
					if err := data.ReplaceChildByID(rootID, mine[len(mine)-1], repl); err != nil {
						t.Error(err)
						return
					}
					mine[len(mine)-1] = repl.ID
				}
			}
		}(w)
	}
	wg.Wait()
	m.Close() // stop watchers, join in-flight refreshes

	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view inconsistent after concurrent churn")
	}
}

// TestRefreshFullShipFailureRecovers regression-tests the forced-full
// path: a transient ship failure during RefreshFull must not leave an
// empty view behind subsequently "successful" refreshes — the next
// refresh re-derives and re-ships the full content.
func TestRefreshFullShipFailureRecovers(t *testing.T) {
	sys := testSystem(t, 25)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	sys.Net.SetDown("client", true)
	if _, err := m.RefreshFull("cheap"); err == nil {
		t.Fatal("RefreshFull to a down placement should fail")
	}
	sys.Net.SetDown("client", false)
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	want := expectedTrees(t, sys, "data", src)
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), want) {
		t.Error("view not restored after failed RefreshFull")
	}
	// Maintenance keeps working afterwards, including retractions.
	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	if err := data.RemoveChildByID(catalog.Root.ID, matchingItemID(t, sys)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("retraction broken after RefreshFull recovery")
	}
}
