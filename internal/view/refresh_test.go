package view

import (
	"fmt"
	"sync"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

func addItem(t testing.TB, sys *core.System, at netsim.PeerID, doc string, price int, name string) {
	t.Helper()
	p, _ := sys.Peer(at)
	d, ok := p.Document(doc)
	if !ok {
		t.Fatalf("no document %q at %s", doc, at)
	}
	item := xmltree.E("item",
		xmltree.E("name", xmltree.T(name)),
		xmltree.E("price", xmltree.T(fmt.Sprint(price))))
	if err := p.AddChild(d.Root.ID, item); err != nil {
		t.Fatal(err)
	}
}

// expectedTrees evaluates the view query directly against the base
// peer's store — the ground truth a fresh materialization would hold.
func expectedTrees(t testing.TB, sys *core.System, at netsim.PeerID, src string) []*xmltree.Node {
	t.Helper()
	p, _ := sys.Peer(at)
	out, err := p.RunQuery(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sameMultiset compares two forests by canonical hash, order-blind.
func sameMultiset(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[xmltree.Digest]int{}
	for _, n := range a {
		counts[xmltree.Hash(n)]++
	}
	for _, n := range b {
		counts[xmltree.Hash(n)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestIncrementalRefreshStaysConsistent(t *testing.T) {
	sys := testSystem(t, 80)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	if m.Views()[0].Mode != "incremental" {
		t.Fatalf("expected incremental mode, got %s", m.Views()[0].Mode)
	}

	addItem(t, sys, "data", "catalog", 5, "matching-a")
	addItem(t, sys, "data", "catalog", 999, "too-expensive")
	addItem(t, sys, "data", "catalog", 120, "matching-b")

	before := sys.Net.Stats().Bytes
	shipped, err := m.Refresh("cheap")
	if err != nil {
		t.Fatal(err)
	}
	if shipped != 2 {
		t.Errorf("refresh shipped %d trees, want 2", shipped)
	}
	deltaBytes := sys.Net.Stats().Bytes - before
	data, _ := sys.Peer("data")
	catalog, _ := data.Document("catalog")
	if full := int64(catalog.Root.ByteSize()); deltaBytes >= full {
		t.Errorf("incremental refresh moved %d bytes, full doc is %d", deltaBytes, full)
	}

	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view diverged from its definition after incremental refresh")
	}

	// A second refresh with no base change ships nothing.
	if n, err := m.Refresh("cheap"); err != nil || n != 0 {
		t.Errorf("idle refresh shipped %d (err %v), want 0", n, err)
	}
}

func TestFullRefreshFallback(t *testing.T) {
	sys := testSystem(t, 40)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	// A let-first aggregation is not incrementalizable: the manager
	// must fall back to full re-materialization.
	src := `let $all := doc("catalog")/item return <summary n="{count($all)}"/>`
	if err := m.Define("stats", src, "client"); err != nil {
		t.Fatal(err)
	}
	if m.Views()[0].Mode != "recompute" {
		t.Fatalf("expected recompute mode, got %s", m.Views()[0].Mode)
	}
	check := func() {
		kids := viewTrees(t, sys, "client", "stats")
		if len(kids) != 1 {
			t.Fatalf("summary view has %d trees", len(kids))
		}
		want := expectedTrees(t, sys, "data", src)
		if !sameMultiset(kids, want) {
			t.Errorf("summary stale: have %s want %s",
				xmltree.Serialize(kids[0]), xmltree.Serialize(want[0]))
		}
	}
	check()
	addItem(t, sys, "data", "catalog", 10, "later")
	addItem(t, sys, "data", "catalog", 20, "even-later")
	if _, err := m.Refresh("stats"); err != nil {
		t.Fatal(err)
	}
	check()
}

func TestReplicaViewFullRefresh(t *testing.T) {
	sys := testSystem(t, 15)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("copy", `doc("catalog")`, "client"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 42, "fresh")
	if _, err := m.Refresh("copy"); err != nil {
		t.Fatal(err)
	}
	client, _ := sys.Peer("client")
	data, _ := sys.Peer("data")
	cp, _ := client.Document(DocPrefix + "copy")
	orig, _ := data.Document("catalog")
	if !xmltree.Equal(cp.Root, orig.Root) {
		t.Error("replica view stale after full refresh")
	}
	// The reinstalled root must still resolve through d@any.
	if _, err := sys.Eval("client", &core.Doc{Name: "catalog", At: core.AnyPeer}); err != nil {
		t.Errorf("d@any after replica refresh: %v", err)
	}
}

// TestAutoRefreshConcurrentUpdates races concurrent base-document
// writers against watcher-driven view maintenance; run under -race.
// After the writers finish and the manager quiesces, one final
// synchronous refresh must leave the view exactly consistent.
func TestAutoRefreshConcurrentUpdates(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	m.AutoRefresh()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				addItem(t, sys, "data", "catalog", (w*perWriter+i)%1000,
					fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	m.Close() // stop watchers, join in-flight refreshes

	if _, err := m.Refresh("cheap"); err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view inconsistent after concurrent updates")
	}
}

func TestRefreshAllCoversEveryView(t *testing.T) {
	sys := testSystem(t, 20)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	if err := m.Define("a", `for $i in doc("catalog")/item where $i/price < 500 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("b", `for $i in doc("catalog")/item where $i/price >= 500 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 100, "cheap-one")
	addItem(t, sys, "data", "catalog", 900, "dear-one")
	n, err := m.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("RefreshAll moved %d trees, want 2", n)
	}
}

// TestFailedShipIsRetried regression-tests delta delivery: a refresh
// whose ship fails (placement peer down) must re-emit the same rows
// once the peer returns, not lose them.
func TestFailedShipIsRetried(t *testing.T) {
	sys := testSystem(t, 10)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("catalog")/item where $i/price < 500 return $i`
	if err := m.Define("cheap", src, "client"); err != nil {
		t.Fatal(err)
	}
	addItem(t, sys, "data", "catalog", 7, "fragile")
	sys.Net.SetDown("client", true)
	if _, err := m.Refresh("cheap"); err == nil {
		t.Fatal("refresh to a down peer should fail")
	}
	sys.Net.SetDown("client", false)
	n, err := m.Refresh("cheap")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("retry shipped %d trees, want the 1 lost in the failed refresh", n)
	}
	if !sameMultiset(viewTrees(t, sys, "client", "cheap"), expectedTrees(t, sys, "data", src)) {
		t.Error("view lost rows across the failed ship")
	}
}

// TestFailedDefineLeavesNoGhost regression-tests definition rollback:
// a Define whose materialization fails must not leave a view state
// that rewrites queries onto a never-installed document.
func TestFailedDefineLeavesNoGhost(t *testing.T) {
	sys := testSystem(t, 5)
	defer sys.Close()
	m := NewManager(sys)
	defer m.Close()

	src := `for $i in doc("nosuchdoc")/item return $i`
	if err := m.Define("ghost", src, "client"); err == nil {
		t.Fatal("defining over a missing base should fail")
	}
	if len(m.Views()) != 0 {
		t.Fatalf("failed define left state: %+v", m.Views())
	}
	if _, _, ok := m.RewriteBest(xquery.MustParse(
		`for $i in doc("nosuchdoc")/item where $i/p < 1 return $i`)); ok {
		t.Error("ghost view still rewrites queries")
	}
	// Once the base exists, the same definition must succeed.
	p, _ := sys.Peer("data")
	if err := p.InstallDocument("nosuchdoc", xmltree.MustParse(`<d><item><p>0</p></item></d>`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("ghost", src, "client"); err != nil {
		t.Errorf("re-define after installing the base: %v", err)
	}
}
