package opt

import (
	"fmt"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/peer"
	"axml/internal/rewrite"
	"axml/internal/service"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// buildSystem: client, data (big catalog + declarative service), spare.
func buildSystem(t testing.TB, items int) *core.System {
	t.Helper()
	net := netsim.New()
	netsim.Uniform(net, []netsim.PeerID{"client", "data", "spare"}, netsim.Link{LatencyMs: 5, BytesPerMs: 500})
	sys := core.NewSystem(net)
	sys.MustAddPeer("client")
	data := sys.MustAddPeer("data")
	sys.MustAddPeer("spare")

	cat := xmltree.NewElement("catalog")
	for i := 0; i < items; i++ {
		cat.AppendChild(xmltree.E("item",
			xmltree.A("id", fmt.Sprint(i)),
			xmltree.E("name", xmltree.T(fmt.Sprintf("product-%d", i))),
			xmltree.E("price", xmltree.T(fmt.Sprint((i*37)%200))),
			xmltree.E("desc", xmltree.T(strings.Repeat("lorem ipsum ", 5))),
		))
	}
	if err := data.InstallDocument("catalog", cat); err != nil {
		t.Fatal(err)
	}
	q := xquery.MustParse(`for $i in doc("catalog")/item return <offer>{$i/name, $i/price}</offer>`)
	if err := data.RegisterService(&service.Service{Name: "offers", Provider: "data", Body: q}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEstimateRemoteDocCostsMoreThanLocal(t *testing.T) {
	sys := buildSystem(t, 50)
	es := NewEstimator(sys)
	remote, err := es.Estimate("client", &core.Doc{Name: "catalog", At: "data"})
	if err != nil {
		t.Fatal(err)
	}
	local, err := es.Estimate("data", &core.Doc{Name: "catalog", At: "data"})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Bytes <= local.Bytes || remote.Messages == 0 {
		t.Errorf("remote=%+v local=%+v", remote, local)
	}
	if local.Bytes != 0 || local.Messages != 0 {
		t.Errorf("local doc should be free: %+v", local)
	}
}

func TestEstimateErrors(t *testing.T) {
	sys := buildSystem(t, 5)
	es := NewEstimator(sys)
	if _, err := es.Estimate("client", &core.Doc{Name: "ghost", At: "data"}); err == nil {
		t.Error("unknown doc should error")
	}
	if _, err := es.Estimate("client", &core.Doc{Name: "x", At: "ghostpeer"}); err == nil {
		t.Error("unknown peer should error")
	}
	q := xquery.MustParse(`doc("ghost")/x`)
	if _, err := es.Estimate("client", &core.Query{Q: q, At: "client"}); err == nil {
		t.Error("query over unknown doc should error")
	}
}

func TestOptimizerPicksSelectionPushdown(t *testing.T) {
	sys := buildSystem(t, 200)
	q := xquery.MustParse(`for $i in doc("catalog")/item where $i/price < 10 return $i/name`)
	e := &core.Query{Q: q, At: "client"}

	plan, explored, err := Optimize(sys, "client", e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if explored < 2 {
		t.Errorf("explored only %d plans", explored)
	}
	if len(plan.Derivation) == 0 {
		t.Fatal("optimizer kept the naive plan for a highly selective query")
	}
	foundPush := false
	for _, step := range plan.Derivation {
		if strings.Contains(step, "pushSelection") || strings.Contains(step, "delegate") {
			foundPush = true
		}
	}
	if !foundPush {
		t.Errorf("derivation lacks pushdown/delegation: %v", plan.Derivation)
	}

	// The predicted winner must actually win: measure both plans.
	naiveSys := buildSystem(t, 200)
	if _, err := naiveSys.Eval("client", e); err != nil {
		t.Fatal(err)
	}
	naiveBytes := naiveSys.Net.Stats().Bytes

	optSys := buildSystem(t, 200)
	res, err := optSys.Eval("client", plan.Expr)
	if err != nil {
		t.Fatal(err)
	}
	optBytes := optSys.Net.Stats().Bytes
	if optBytes >= naiveBytes {
		t.Errorf("optimized plan moved %d bytes, naive %d", optBytes, naiveBytes)
	}
	// And the results agree.
	direct, _ := naiveSys.Eval("client", e)
	if len(res.Forest) != len(direct.Forest) {
		t.Errorf("result count: optimized %d vs naive %d", len(res.Forest), len(direct.Forest))
	}
}

func TestOptimizerKeepsLocalPlan(t *testing.T) {
	sys := buildSystem(t, 50)
	// Query over a doc at the evaluation site: nothing to improve.
	q := xquery.MustParse(`for $i in doc("catalog")/item where $i/price < 10 return $i/name`)
	e := &core.Query{Q: q, At: "data"}
	plan, _, err := Optimize(sys, "data", e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Derivation) != 0 {
		t.Errorf("local plan should stay local, got %v", plan.Derivation)
	}
}

func TestOptimizerPushesQueryOverCall(t *testing.T) {
	sys := buildSystem(t, 200)
	q := xquery.MustParse(`param $in; for $o in $in where $o/price < 10 return $o/name`)
	e := &core.Query{Q: q, At: "client", Args: []core.Expr{
		&core.ServiceCall{Provider: "data", Service: "offers"},
	}}
	plan, _, err := Optimize(sys, "client", e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, step := range plan.Derivation {
		if strings.Contains(step, "pushOverCall") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected pushOverCall in derivation, got %v", plan.Derivation)
	}
}

func TestOptimizerShareTransfer(t *testing.T) {
	sys := buildSystem(t, 100)
	q := xquery.MustParse(`param $a, $b; <pair>{count($a/item), count($b/item)}</pair>`)
	e := &core.Query{Q: q, At: "client", Args: []core.Expr{
		&core.Doc{Name: "catalog", At: "data"},
		&core.Doc{Name: "catalog", At: "data"},
	}}
	plan, _, err := Optimize(sys, "client", e, Options{
		Rules: []rewrite.Rule{rewrite.ShareTransfer{}, rewrite.UnshareTransfer{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pq, ok := plan.Expr.(*core.Query)
	if !ok || !pq.ShareArgs {
		t.Errorf("optimizer should enable transfer sharing: %s", plan.Expr.String())
	}
}

func TestOptimizerRulesAblation(t *testing.T) {
	sys := buildSystem(t, 200)
	q := xquery.MustParse(`for $i in doc("catalog")/item where $i/price < 10 return $i/name`)
	e := &core.Query{Q: q, At: "client"}
	// With no rules, the plan cannot change.
	plan, explored, err := Optimize(sys, "client", e, Options{Rules: []rewrite.Rule{}})
	if err != nil {
		t.Fatal(err)
	}
	if explored != 1 || len(plan.Derivation) != 0 {
		t.Errorf("empty rule set: explored=%d deriv=%v", explored, plan.Derivation)
	}
	// With only pushdown the plan must use it.
	plan2, _, err := Optimize(sys, "client", e, Options{
		Rules: []rewrite.Rule{rewrite.SelectionPushdown{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Derivation) != 1 || !strings.Contains(plan2.Derivation[0], "pushSelection") {
		t.Errorf("deriv = %v", plan2.Derivation)
	}
	if plan2.Cost >= plan.Cost {
		t.Errorf("pushdown plan should be cheaper: %v vs %v", plan2.Cost, plan.Cost)
	}
}

func TestOptimizerRerouteOnSlowLink(t *testing.T) {
	net := netsim.New()
	sys := core.NewSystem(net)
	sys.MustAddPeer("src")
	sys.MustAddPeer("dst")
	sys.MustAddPeer("hub")
	// Slow direct link, fast two-hop route through the hub — the case
	// where rule (12) applied right-to-left wins.
	net.SetLinkBoth("src", "dst", netsim.Link{LatencyMs: 200, BytesPerMs: 10})
	net.SetLinkBoth("src", "hub", netsim.Link{LatencyMs: 5, BytesPerMs: 1000})
	net.SetLinkBoth("hub", "dst", netsim.Link{LatencyMs: 5, BytesPerMs: 1000})

	payload := xmltree.E("blob", xmltree.T(strings.Repeat("x", 5000)))
	e := &core.Send{Dest: core.DestPeer{P: "dst"}, Payload: &core.Tree{Node: payload, At: "src"}}
	plan, _, err := Optimize(sys, "src", e, Options{
		Rules: []rewrite.Rule{rewrite.RouteIntro{}, rewrite.RouteElim{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	relay, ok := plan.Expr.(*core.Relay)
	if !ok || len(relay.Via) != 1 || relay.Via[0] != "hub" {
		t.Fatalf("expected relay via hub, got %s", plan.Expr.String())
	}
	// And measured VT agrees: relayed beats direct.
	directSys := freshRouteSystem(t)
	dRes, err := directSys.Eval("src", &core.Send{
		Dest: core.DestPeer{P: "dst"}, Payload: &core.Tree{Node: xmltree.DeepCopy(payload), At: "src"}})
	if err != nil {
		t.Fatal(err)
	}
	relaySys := freshRouteSystem(t)
	rRes, err := relaySys.Eval("src", &core.Relay{
		Via: []netsim.PeerID{"hub"}, Dest: core.DestPeer{P: "dst"},
		Payload: &core.Tree{Node: xmltree.DeepCopy(payload), At: "src"}})
	if err != nil {
		t.Fatal(err)
	}
	if rRes.VT >= dRes.VT {
		t.Errorf("relayed VT %v should beat direct %v", rRes.VT, dRes.VT)
	}
}

func freshRouteSystem(t *testing.T) *core.System {
	t.Helper()
	net := netsim.New()
	sys := core.NewSystem(net)
	sys.MustAddPeer("src")
	sys.MustAddPeer("dst")
	sys.MustAddPeer("hub")
	net.SetLinkBoth("src", "dst", netsim.Link{LatencyMs: 200, BytesPerMs: 10})
	net.SetLinkBoth("src", "hub", netsim.Link{LatencyMs: 5, BytesPerMs: 1000})
	net.SetLinkBoth("hub", "dst", netsim.Link{LatencyMs: 5, BytesPerMs: 1000})
	return sys
}

func TestPlanString(t *testing.T) {
	sys := buildSystem(t, 10)
	q := xquery.MustParse(`doc("catalog")/item/name`)
	plan, _, err := Optimize(sys, "client", &core.Query{Q: q, At: "client"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "cost=") || !strings.Contains(s, "bytes=") {
		t.Errorf("Plan.String = %q", s)
	}
}

func TestEstimateServiceCallWithForward(t *testing.T) {
	sys := buildSystem(t, 50)
	client, _ := sys.Peer("client")
	if err := client.InstallDocument("inbox", xmltree.E("inbox")); err != nil {
		t.Fatal(err)
	}
	inbox, _ := client.Document("inbox")
	es := NewEstimator(sys)
	withFw, err := es.Estimate("client", &core.ServiceCall{
		Provider: "data", Service: "offers",
		Forward: []peer.NodeRef{{Peer: "client", Node: inbox.Root.ID}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withFw.OutBytes != 0 {
		t.Errorf("forwarded call should return no local bytes: %+v", withFw)
	}
	noFw, err := es.Estimate("client", &core.ServiceCall{Provider: "data", Service: "offers"})
	if err != nil {
		t.Fatal(err)
	}
	if noFw.OutBytes == 0 {
		t.Errorf("plain call returns data: %+v", noFw)
	}
}
