package opt

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/rewrite"
)

// Options configures the plan search.
type Options struct {
	// Rules is the rewrite rule set (DefaultRules when nil). Ablation
	// experiments pass subsets.
	Rules []rewrite.Rule
	// ExtraRules are appended to Rules: site-specific rewrites that
	// depend on system state beyond the algebra, such as the
	// materialized-view rule of internal/view. They participate in the
	// same plan search, so "read view@local" competes with "ship from
	// base@remote" under the one cost model.
	ExtraRules []rewrite.Rule
	// MaxDepth bounds the number of rule applications along one
	// derivation (default 4).
	MaxDepth int
	// MaxPlans bounds the total number of plans explored (default 512).
	MaxPlans int
	// Weights scalarize estimates (DefaultWeights when zero).
	Weights Weights
}

func (o *Options) fill() {
	if o.Rules == nil {
		o.Rules = rewrite.DefaultRules()
	}
	if len(o.ExtraRules) > 0 {
		o.Rules = append(append([]rewrite.Rule{}, o.Rules...), o.ExtraRules...)
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if o.MaxPlans == 0 {
		o.MaxPlans = 512
	}
	if o.Weights == (Weights{}) {
		o.Weights = DefaultWeights
	}
}

// Plan is an optimized expression with its predicted cost and the
// derivation that produced it.
type Plan struct {
	Expr core.Expr
	Est  Estimate
	Cost float64
	// BaseCost is the estimated cost of the original (unrewritten)
	// expression under the same weights — the search's starting point.
	// Cost ≤ BaseCost always; the difference is the predicted saving
	// of the chosen plan (the session plan cache weights its eviction
	// policy with it).
	BaseCost   float64
	Derivation []string // "rule @ position" steps from the original
}

// String renders a one-line plan summary.
func (p *Plan) String() string {
	return fmt.Sprintf("cost=%.2f bytes=%.0f msgs=%.0f time=%.2fms via [%s]: %s",
		p.Cost, p.Est.Bytes, p.Est.Messages, p.Est.TimeMs,
		strings.Join(p.Derivation, "; "), p.Expr.String())
}

// Optimize searches for the cheapest plan equivalent to e (under the
// rule set) when evaluated at peer at. It returns the best plan and
// the number of plans explored.
func Optimize(sys *core.System, at netsim.PeerID, e core.Expr, opts Options) (*Plan, int, error) {
	opts.fill()
	est := NewEstimator(sys)
	ctx := &rewrite.Context{Sys: sys, At: at}

	baseEst, baseErr := est.Estimate(at, e)
	baseCost := math.Inf(1)
	if baseErr == nil {
		baseCost = baseEst.Total(opts.Weights)
	}
	// An inestimable original is not immediately fatal: the expression
	// may read a document no local peer hosts while a rewrite onto a
	// materialized copy (e.g. a view adopted from another deployment)
	// is perfectly answerable. Seed the search with an infinite-cost
	// start node; only if no alternative estimates either does the
	// original error stand.
	start := &node{expr: e, cost: baseCost, est: baseEst}
	best := start

	seen := map[string]bool{string(core.SerializeExpr(e)): true}
	pq := &nodeHeap{start}
	explored := 0
	for pq.Len() > 0 && explored < opts.MaxPlans {
		cur := heap.Pop(pq).(*node)
		explored++
		if cur.cost < best.cost {
			best = cur
		}
		if cur.depth >= opts.MaxDepth {
			continue
		}
		for _, d := range rewrite.Alternatives(cur.expr, ctx, opts.Rules) {
			key := string(core.SerializeExpr(d.E))
			if seen[key] {
				continue
			}
			seen[key] = true
			de, err := est.Estimate(at, d.E)
			if err != nil {
				// Some alternatives may be inestimable (e.g. missing
				// stats); skip rather than fail the search.
				continue
			}
			heap.Push(pq, &node{
				expr:  d.E,
				deriv: append(append([]string{}, cur.deriv...), d.Rule+" @ "+d.Pos),
				depth: cur.depth + 1,
				cost:  de.Total(opts.Weights),
				est:   de,
			})
		}
	}
	if best == start && baseErr != nil {
		return nil, explored, fmt.Errorf("opt: estimating original plan: %w", baseErr)
	}
	if math.IsInf(baseCost, 1) {
		// The original never estimated; report the chosen plan's own
		// cost as the baseline so downstream consumers (plan-cache
		// eviction weights) see a finite, zero-saving baseline.
		baseCost = best.cost
	}
	return &Plan{
		Expr:       best.expr,
		Est:        best.est,
		Cost:       best.cost,
		BaseCost:   baseCost,
		Derivation: best.deriv,
	}, explored, nil
}

// node is one explored plan in the search frontier.
type node struct {
	expr  core.Expr
	deriv []string
	depth int
	cost  float64
	est   Estimate
}

type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
