// Package opt implements cost-based optimization over the rewrite
// rules of §3.3: a static cost estimator for expressions (network
// bytes, messages, and virtual time, priced through the same link
// model the evaluator charges) and a memoized best-first search over
// single-rule derivations.
//
// The estimator follows classical distributed-query optimization
// practice (paper's references [12], [15]): the optimizer is assumed
// to know catalog statistics — document sizes and link profiles — and
// uses coarse selectivity factors for query outputs.
package opt

import (
	"fmt"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/xquery"
)

// Weights convert an Estimate into a scalar cost.
type Weights struct {
	PerByte    float64 // cost per wire byte
	PerMessage float64 // fixed cost per message
	PerMs      float64 // cost per virtual millisecond of makespan
}

// DefaultWeights balance traffic and latency: 1 per KB, 5 per message,
// 10 per ms.
var DefaultWeights = Weights{PerByte: 0.001, PerMessage: 5, PerMs: 10}

// Estimate is the predicted cost of a plan.
type Estimate struct {
	Bytes    float64 // wire bytes moved
	Messages float64 // messages sent
	TimeMs   float64 // virtual completion time (critical path)
	OutBytes float64 // size of the result at the evaluation site
}

// Total scalarizes the estimate.
func (e Estimate) Total(w Weights) float64 {
	return w.PerByte*e.Bytes + w.PerMessage*e.Messages + w.PerMs*e.TimeMs
}

// Estimator predicts plan costs against a system's catalog statistics.
type Estimator struct {
	Sys *core.System
	// SelPerPredicate is the fraction of input surviving one where
	// conjunct (default 0.2).
	SelPerPredicate float64
	// ProjFactor is the shrink factor of a projecting return clause
	// (default 0.4).
	ProjFactor float64
	// BytesPerNode approximates serialized bytes per tree node
	// (default 30), used to convert sizes into compute-node counts.
	BytesPerNode float64
}

// NewEstimator creates an estimator with default calibration.
func NewEstimator(sys *core.System) *Estimator {
	return &Estimator{Sys: sys, SelPerPredicate: 0.2, ProjFactor: 0.4, BytesPerNode: 30}
}

// envelope mirrors netsim's per-message framing overhead.
const envelope = 64

// requestBytes is the assumed size of a small control request.
const requestBytes = 128

// Estimate predicts the cost of evaluating e at peer at.
func (es *Estimator) Estimate(at netsim.PeerID, e core.Expr) (Estimate, error) {
	return es.est(at, e)
}

// transfer charges one message of size bytes over from→to.
func (es *Estimator) transfer(acc *Estimate, from, to netsim.PeerID, size float64, start float64) float64 {
	if from == to {
		return start
	}
	link := es.Sys.Net.LinkInfo(from, to)
	acc.Bytes += size + envelope
	acc.Messages++
	d := link.LatencyMs
	if link.BytesPerMs > 0 {
		d += (size + envelope) / link.BytesPerMs
	}
	return start + d
}

// docSize returns the serialized size of a document, resolving generic
// references through the catalog.
func (es *Estimator) docSize(name string, at netsim.PeerID) (float64, netsim.PeerID, error) {
	if at == core.AnyPeer {
		rep, err := es.Sys.Generics.ResolveDoc("", name)
		if err != nil {
			return 0, "", err
		}
		name, at = rep.Doc, rep.At
	}
	p, ok := es.Sys.Peer(at)
	if !ok {
		return 0, "", fmt.Errorf("opt: unknown peer %q", at)
	}
	d, ok := p.Document(name)
	if !ok {
		return 0, "", fmt.Errorf("opt: no document %q at %s", name, at)
	}
	return float64(d.Root.ByteSize()), at, nil
}

// QuerySelectivity exposes the estimator's output-fraction model for
// reuse outside the plan search: the adaptive-placement scorer prices
// candidate moves with the same cardinality estimates the optimizer
// prices plans with, so the two never disagree about what a query
// ships.
func (es *Estimator) QuerySelectivity(q *xquery.Query) float64 {
	return es.querySelectivity(q)
}

// querySelectivity estimates the output fraction of a query from its
// shape: each where conjunct filters, a projecting return shrinks.
func (es *Estimator) querySelectivity(q *xquery.Query) float64 {
	sel := 1.0
	if f, ok := q.Body.(*xquery.FLWR); ok {
		if f.Where != nil {
			conjuncts := 1
			if p, ok := f.Where.(*xquery.Path); ok {
				conjuncts = countConjuncts(p)
			}
			for i := 0; i < conjuncts; i++ {
				sel *= es.SelPerPredicate
			}
		}
		sel *= es.ProjFactor
	}
	if sel < 0.001 {
		sel = 0.001
	}
	return sel
}

func countConjuncts(p *xquery.Path) int {
	// The xquery AST keeps the where as a single xpath expression;
	// approximate by counting " and " occurrences in its rendering.
	s := p.String()
	count := 1
	for i := 0; i+5 <= len(s); i++ {
		if s[i:i+5] == " and " {
			count++
		}
	}
	return count
}

func (es *Estimator) est(at netsim.PeerID, e core.Expr) (Estimate, error) {
	var acc Estimate
	switch v := e.(type) {
	case *core.Tree:
		size := float64(v.Node.ByteSize())
		if v.At != at {
			// Request + response.
			t := es.transfer(&acc, at, v.At, requestBytes, 0)
			acc.TimeMs = es.transfer(&acc, v.At, at, size, t)
		}
		acc.OutBytes = size
		return acc, nil
	case *core.Doc:
		size, home, err := es.docSize(v.Name, v.At)
		if err != nil {
			return acc, err
		}
		if home != at {
			t := es.transfer(&acc, at, home, requestBytes, 0)
			acc.TimeMs = es.transfer(&acc, home, at, size, t)
		}
		acc.OutBytes = size
		return acc, nil
	case *core.QueryVal:
		acc.OutBytes = float64(len(v.Q.String()))
		return acc, nil
	case *core.Query:
		return es.estQuery(at, v)
	case *core.Send:
		return es.estSend(at, v)
	case *core.Relay:
		return es.estRelay(at, v)
	case *core.ServiceCall:
		return es.estCall(at, v)
	case *core.EvalAt:
		return es.estEvalAt(at, v)
	default:
		return acc, fmt.Errorf("opt: cannot estimate %T", e)
	}
}

func (es *Estimator) estQuery(at netsim.PeerID, q *core.Query) (Estimate, error) {
	var acc Estimate
	start := 0.0
	// Query text ships when defined elsewhere (definition (7)).
	if q.At != "" && q.At != at {
		t := es.transfer(&acc, at, q.At, requestBytes, 0)
		start = es.transfer(&acc, q.At, at, float64(len(q.Q.String())), t)
	}
	inputBytes := 0.0
	// Arguments (with rule-13 sharing, duplicates cost once).
	seen := map[string]bool{}
	maxArgT := start
	for _, a := range q.Args {
		if q.ShareArgs {
			key := string(core.SerializeExpr(a))
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		sub, err := es.est(at, a)
		if err != nil {
			return acc, err
		}
		acc.Bytes += sub.Bytes
		acc.Messages += sub.Messages
		if start+sub.TimeMs > maxArgT {
			maxArgT = start + sub.TimeMs
		}
		inputBytes += sub.OutBytes
	}
	// Documents read via doc("name"): local ones are free, remote ones
	// ship (the naive fetch of definition (7)).
	p, ok := es.Sys.Peer(at)
	if !ok {
		return acc, fmt.Errorf("opt: unknown peer %q", at)
	}
	docT := start
	for _, name := range q.Q.DocRefs() {
		if p.HasDocument(name) {
			d, _ := p.Document(name)
			inputBytes += float64(d.Root.ByteSize())
			continue
		}
		size, home, err := es.remoteDocInfo(name, at)
		if err != nil {
			return acc, err
		}
		t := es.transfer(&acc, at, home, requestBytes, start)
		t = es.transfer(&acc, home, at, size, t)
		if t > docT {
			docT = t
		}
		inputBytes += size
	}
	if docT > maxArgT {
		maxArgT = docT
	}
	sel := es.querySelectivity(q.Q)
	out := inputBytes * sel
	if out < 16 {
		out = 16
	}
	nodes := inputBytes / es.BytesPerNode
	compute := es.Sys.Cost.QueryMsPerNode * nodes * es.computeFactor(at)
	acc.TimeMs = maxArgT + compute
	acc.OutBytes = out
	return acc, nil
}

// remoteDocInfo locates a document through the generics catalog first
// (mirroring the evaluator's pickDoc priority), then on any hosting
// peer, and returns its size and home.
func (es *Estimator) remoteDocInfo(name string, exclude netsim.PeerID) (float64, netsim.PeerID, error) {
	if rep, err := es.Sys.Generics.ResolveDoc(exclude, name); err == nil {
		return es.docSize(rep.Doc, rep.At)
	}
	for _, id := range sortedPeers(es.Sys) {
		if id == exclude {
			continue
		}
		p, ok := es.Sys.Peer(id)
		if !ok {
			continue
		}
		if d, ok := p.Document(name); ok {
			return float64(d.Root.ByteSize()), id, nil
		}
	}
	return 0, "", fmt.Errorf("opt: no peer hosts document: %w: %q", core.ErrNoSuchDoc, name)
}

func (es *Estimator) estSend(at netsim.PeerID, s *core.Send) (Estimate, error) {
	acc, err := es.est(at, s.Payload)
	if err != nil {
		return acc, err
	}
	switch d := s.Dest.(type) {
	case core.DestPeer:
		acc.TimeMs = es.transfer(&acc, at, d.P, acc.OutBytes, acc.TimeMs)
	case core.DestDoc:
		acc.TimeMs = es.transfer(&acc, at, d.At, acc.OutBytes, acc.TimeMs)
	case core.DestNodes:
		maxT := acc.TimeMs
		for _, ref := range d.Refs {
			t := es.transfer(&acc, at, ref.Peer, acc.OutBytes, acc.TimeMs)
			if t > maxT {
				maxT = t
			}
		}
		acc.TimeMs = maxT
	}
	acc.OutBytes = 0 // a send returns ∅
	return acc, nil
}

func (es *Estimator) estRelay(at netsim.PeerID, r *core.Relay) (Estimate, error) {
	acc, err := es.est(at, r.Payload)
	if err != nil {
		return acc, err
	}
	cur := at
	t := acc.TimeMs
	for _, hop := range r.Via {
		t = es.transfer(&acc, cur, hop, acc.OutBytes, t)
		cur = hop
	}
	switch d := r.Dest.(type) {
	case core.DestPeer:
		t = es.transfer(&acc, cur, d.P, acc.OutBytes, t)
	case core.DestNodes:
		maxT := t
		for _, ref := range d.Refs {
			ht := es.transfer(&acc, cur, ref.Peer, acc.OutBytes, t)
			if ht > maxT {
				maxT = ht
			}
		}
		t = maxT
	}
	acc.TimeMs = t
	acc.OutBytes = 0
	return acc, nil
}

func (es *Estimator) estCall(at netsim.PeerID, c *core.ServiceCall) (Estimate, error) {
	var acc Estimate
	provider := c.Provider
	svcName := c.Service
	if provider == core.AnyPeer {
		ref, err := es.Sys.Generics.ResolveService(at, c.Service)
		if err != nil {
			return acc, err
		}
		provider, svcName = ref.Provider, ref.Name
	}
	paramBytes := 0.0
	maxT := 0.0
	for _, pe := range c.Params {
		sub, err := es.est(at, pe)
		if err != nil {
			return acc, err
		}
		acc.Bytes += sub.Bytes
		acc.Messages += sub.Messages
		if sub.TimeMs > maxT {
			maxT = sub.TimeMs
		}
		paramBytes += sub.OutBytes
	}
	// Params ship caller→provider.
	t := es.transfer(&acc, at, provider, paramBytes+requestBytes, maxT)
	// Service compute: declarative bodies read provider documents.
	inputBytes := paramBytes
	sel := 0.5
	if p, ok := es.Sys.Peer(provider); ok {
		if svc, ok := p.Service(svcName); ok && svc.Declarative() {
			for _, name := range svc.Body.DocRefs() {
				if d, ok := p.Document(name); ok {
					inputBytes += float64(d.Root.ByteSize())
				}
			}
			sel = es.querySelectivity(svc.Body)
		}
	}
	out := inputBytes * sel
	if out < 16 {
		out = 16
	}
	compute := es.Sys.Cost.QueryMsPerNode * (inputBytes / es.BytesPerNode) * es.computeFactor(provider)
	t += compute
	if len(c.Forward) == 0 {
		// Results return to the caller.
		acc.TimeMs = es.transfer(&acc, provider, at, out, t)
		acc.OutBytes = out
		return acc, nil
	}
	maxFT := t
	for _, ref := range c.Forward {
		ft := es.transfer(&acc, provider, ref.Peer, out, t)
		if ft > maxFT {
			maxFT = ft
		}
	}
	// Small ack returns to the caller.
	ackT := es.transfer(&acc, provider, at, 16, t)
	if ackT > maxFT {
		maxFT = ackT
	}
	acc.TimeMs = maxFT
	acc.OutBytes = 0
	return acc, nil
}

func (es *Estimator) estEvalAt(at netsim.PeerID, ev *core.EvalAt) (Estimate, error) {
	var acc Estimate
	if ev.At == at {
		return es.est(at, ev.E)
	}
	// Ship the serialized plan.
	planSize := float64(len(core.SerializeExpr(ev.E)))
	t := es.transfer(&acc, at, ev.At, planSize, 0)
	inner, err := es.est(ev.At, ev.E)
	if err != nil {
		return acc, err
	}
	acc.Bytes += inner.Bytes
	acc.Messages += inner.Messages
	t += inner.TimeMs
	// Result ships back.
	acc.TimeMs = es.transfer(&acc, ev.At, at, inner.OutBytes, t)
	acc.OutBytes = inner.OutBytes
	return acc, nil
}

func (es *Estimator) computeFactor(netsimID netsim.PeerID) float64 {
	// System exposes factors only through cost accounting; reproduce
	// the lookup through a probe cost of one node.
	base := es.Sys.Cost.QueryMsPerNode
	if base == 0 {
		return 1
	}
	return es.Sys.ComputeFactor(netsimID)
}

func sortedPeers(sys *core.System) []netsim.PeerID {
	ids := sys.Peers()
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
