package xpath

import (
	"fmt"
	"strconv"
)

// Compile parses an XPath expression into an executable form.
func Compile(src string) (*Compiled, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, tokens: tokens}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %s", p.cur().kind)
	}
	return &Compiled{Source: src, Root: e}, nil
}

// MustCompile is Compile that panics on error; for tests and constants.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

type parser struct {
	src    string
	tokens []token
	pos    int
}

func (p *parser) cur() token  { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }

func (p *parser) accept(kind tokenKind) bool {
	if p.cur().kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) error {
	if !p.accept(kind) {
		return p.errf("expected %s, found %s", kind, p.cur().kind)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.src, Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// acceptKeyword consumes an identifier token with the given text when
// it appears in operator position.
func (p *parser) acceptKeyword(word string) bool {
	if p.cur().kind == tokIdent && p.cur().text == word {
		p.pos++
		return true
	}
	return false
}

// Expr := OrExpr
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokEq:
			op = "="
		case tokNeq:
			op = "!="
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokLt:
			op = "<"
		case tokLe:
			op = "<="
		case tokGt:
			op = ">"
		case tokGe:
			op = ">="
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.cur().kind == tokStar:
			op = "*"
		case p.cur().kind == tokIdent && p.cur().text == "div":
			op = "div"
		case p.cur().kind == tokIdent && p.cur().text == "mod":
			op = "mod"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{X: x}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (Expr, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokPipe {
		return l, nil
	}
	u := &UnionExpr{Paths: []Expr{l}}
	for p.accept(tokPipe) {
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		u.Paths = append(u.Paths, r)
	}
	return u, nil
}

// parsePath parses [primary] [/ steps] | absolute path | relative path.
func (p *parser) parsePath() (Expr, error) {
	switch p.cur().kind {
	case tokSlash:
		p.pos++
		pe := &PathExpr{Absolute: true}
		if p.startsStep() {
			if err := p.parseSteps(pe); err != nil {
				return nil, err
			}
		}
		return pe, nil
	case tokSlashSlash:
		p.pos++
		pe := &PathExpr{Absolute: true}
		pe.Steps = append(pe.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
		if err := p.parseSteps(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}

	// Primary expression start? (literal, number, variable, '(' or
	// function call). A function call is ident followed by '(' — but
	// node-test keywords text/node/comment are handled in steps.
	if prim, ok, err := p.tryParsePrimary(); err != nil {
		return nil, err
	} else if ok {
		pe := &PathExpr{Filter: prim}
		for {
			if p.cur().kind == tokSlash {
				p.pos++
			} else if p.cur().kind == tokSlashSlash {
				p.pos++
				pe.Steps = append(pe.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
			} else {
				break
			}
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			pe.Steps = append(pe.Steps, st)
		}
		if len(pe.Steps) == 0 {
			return prim, nil
		}
		return pe, nil
	}

	// Relative location path.
	pe := &PathExpr{}
	if err := p.parseSteps(pe); err != nil {
		return nil, err
	}
	return pe, nil
}

func (p *parser) parseSteps(pe *PathExpr) error {
	st, err := p.parseStep()
	if err != nil {
		return err
	}
	pe.Steps = append(pe.Steps, st)
	for {
		if p.cur().kind == tokSlash {
			p.pos++
		} else if p.cur().kind == tokSlashSlash {
			p.pos++
			pe.Steps = append(pe.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
		} else {
			return nil
		}
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		pe.Steps = append(pe.Steps, st)
	}
}

// startsStep reports whether the current token can begin a location step.
func (p *parser) startsStep() bool {
	switch p.cur().kind {
	case tokIdent, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *parser) parseStep() (Step, error) {
	switch p.cur().kind {
	case tokDot:
		p.pos++
		return Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}}, nil
	case tokDotDot:
		p.pos++
		return Step{Axis: AxisParent, Test: NodeTest{Kind: TestNode}}, nil
	case tokAt:
		p.pos++
		test, err := p.parseNodeTest()
		if err != nil {
			return Step{}, err
		}
		st := Step{Axis: AxisAttribute, Test: test}
		return p.parsePredicates(st)
	case tokIdent:
		// axis::… ?
		if p.pos+1 < len(p.tokens) && p.tokens[p.pos+1].kind == tokAxis {
			axName := p.cur().text
			ax, ok := axisNames[axName]
			if !ok {
				return Step{}, p.errf("unknown axis %q", axName)
			}
			p.pos += 2
			test, err := p.parseNodeTest()
			if err != nil {
				return Step{}, err
			}
			return p.parsePredicates(Step{Axis: ax, Test: test})
		}
		test, err := p.parseNodeTest()
		if err != nil {
			return Step{}, err
		}
		return p.parsePredicates(Step{Axis: AxisChild, Test: test})
	case tokStar:
		p.pos++
		return p.parsePredicates(Step{Axis: AxisChild, Test: NodeTest{Kind: TestWild}})
	default:
		return Step{}, p.errf("expected location step, found %s", p.cur().kind)
	}
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	if p.accept(tokStar) {
		return NodeTest{Kind: TestWild}, nil
	}
	if p.cur().kind != tokIdent {
		return NodeTest{}, p.errf("expected node test, found %s", p.cur().kind)
	}
	name := p.next().text
	// text() / node() / comment()
	if p.cur().kind == tokLParen {
		switch name {
		case "text", "node", "comment":
			p.pos++
			if err := p.expect(tokRParen); err != nil {
				return NodeTest{}, err
			}
			switch name {
			case "text":
				return NodeTest{Kind: TestText}, nil
			case "node":
				return NodeTest{Kind: TestNode}, nil
			default:
				return NodeTest{Kind: TestComment}, nil
			}
		default:
			return NodeTest{}, p.errf("function %q cannot be used as a node test", name)
		}
	}
	return NodeTest{Kind: TestName, Name: name}, nil
}

func (p *parser) parsePredicates(st Step) (Step, error) {
	for p.accept(tokLBracket) {
		e, err := p.parseExpr()
		if err != nil {
			return Step{}, err
		}
		if err := p.expect(tokRBracket); err != nil {
			return Step{}, err
		}
		st.Preds = append(st.Preds, e)
	}
	return st, nil
}

// tryParsePrimary recognizes primary expressions that can start a
// filter path: literals, numbers, variables, parenthesized expressions
// and function calls. It returns ok=false when the tokens should be
// parsed as a relative location path instead.
func (p *parser) tryParsePrimary() (Expr, bool, error) {
	switch p.cur().kind {
	case tokString:
		t := p.next()
		return StringLit(t.text), true, nil
	case tokNumber:
		t := p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, false, p.errf("bad number %q", t.text)
		}
		return NumberLit(v), true, nil
	case tokDollar:
		p.pos++
		if p.cur().kind != tokIdent {
			return nil, false, p.errf("expected variable name after '$'")
		}
		return VarRef(p.next().text), true, nil
	case tokLParen:
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, false, err
		}
		return e, true, nil
	case tokIdent:
		name := p.cur().text
		// Function call (but not node-test keywords).
		if p.pos+1 < len(p.tokens) && p.tokens[p.pos+1].kind == tokLParen {
			switch name {
			case "text", "node", "comment":
				return nil, false, nil // node test, not a function
			}
			p.pos += 2 // name and '('
			fc := &FuncCall{Name: name}
			if p.cur().kind != tokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, false, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.accept(tokComma) {
						break
					}
				}
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, false, err
			}
			return fc, true, nil
		}
		return nil, false, nil
	default:
		return nil, false, nil
	}
}
