// Package xpath implements an XPath 1.0 subset over xmltree documents:
// the location-path core (all major axes, name/wildcard/text()/node()
// tests, predicates with positions), the boolean/number/string operator
// grammar, variables, and the core function library. It is the path
// engine underneath the xquery FLWR language and, through it, the
// declarative services of the AXML framework.
//
// Deviations from the W3C recommendation are deliberate and documented:
// node-sets preserve first-visit order (the stored sibling order acts as
// document order), reverse axes yield document order rather than
// proximity order, and namespaces are uninterpreted (a prefixed name is
// an ordinary label containing ':').
package xpath

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSlash      // /
	tokSlashSlash // //
	tokLBracket   // [
	tokRBracket   // ]
	tokLParen     // (
	tokRParen     // )
	tokAt         // @
	tokComma      // ,
	tokAxis       // ::
	tokPipe       // |
	tokPlus       // +
	tokMinus      // -
	tokStar       // * (wildcard or multiply; parser decides via prev token)
	tokEq         // =
	tokNeq        // !=
	tokLt         // <
	tokLe         // <=
	tokGt         // >
	tokGe         // >=
	tokDollar     // $
	tokDot        // .
	tokDotDot     // ..
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of expression", tokIdent: "name", tokNumber: "number",
		tokString: "string", tokSlash: "/", tokSlashSlash: "//",
		tokLBracket: "[", tokRBracket: "]", tokLParen: "(", tokRParen: ")",
		tokAt: "@", tokComma: ",", tokAxis: "::", tokPipe: "|",
		tokPlus: "+", tokMinus: "-", tokStar: "*", tokEq: "=", tokNeq: "!=",
		tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=", tokDollar: "$",
		tokDot: ".", tokDotDot: "..",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports an XPath compilation failure.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipWS()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '/':
			if l.peekAt(1) == '/' {
				l.pos += 2
				l.emitAt(tokSlashSlash, "//", start)
			} else {
				l.pos++
				l.emitAt(tokSlash, "/", start)
			}
		case c == '[':
			l.pos++
			l.emitAt(tokLBracket, "[", start)
		case c == ']':
			l.pos++
			l.emitAt(tokRBracket, "]", start)
		case c == '(':
			l.pos++
			l.emitAt(tokLParen, "(", start)
		case c == ')':
			l.pos++
			l.emitAt(tokRParen, ")", start)
		case c == '@':
			l.pos++
			l.emitAt(tokAt, "@", start)
		case c == ',':
			l.pos++
			l.emitAt(tokComma, ",", start)
		case c == '|':
			l.pos++
			l.emitAt(tokPipe, "|", start)
		case c == '+':
			l.pos++
			l.emitAt(tokPlus, "+", start)
		case c == '-':
			l.pos++
			l.emitAt(tokMinus, "-", start)
		case c == '*':
			l.pos++
			l.emitAt(tokStar, "*", start)
		case c == '=':
			l.pos++
			l.emitAt(tokEq, "=", start)
		case c == '!':
			if l.peekAt(1) != '=' {
				return nil, &SyntaxError{Expr: l.src, Pos: start, Msg: "unexpected '!'"}
			}
			l.pos += 2
			l.emitAt(tokNeq, "!=", start)
		case c == '<':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emitAt(tokLe, "<=", start)
			} else {
				l.pos++
				l.emitAt(tokLt, "<", start)
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emitAt(tokGe, ">=", start)
			} else {
				l.pos++
				l.emitAt(tokGt, ">", start)
			}
		case c == '$':
			l.pos++
			l.emitAt(tokDollar, "$", start)
		case c == ':':
			if l.peekAt(1) == ':' {
				l.pos += 2
				l.emitAt(tokAxis, "::", start)
			} else {
				return nil, &SyntaxError{Expr: l.src, Pos: start, Msg: "unexpected ':'"}
			}
		case c == '.':
			if l.peekAt(1) == '.' {
				l.pos += 2
				l.emitAt(tokDotDot, "..", start)
			} else if isDigit(l.peekAt(1)) {
				l.lexNumber()
			} else {
				l.pos++
				l.emitAt(tokDot, ".", start)
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isDigit(c):
			l.lexNumber()
		case isNameStart(c):
			l.lexName()
		default:
			return nil, &SyntaxError{Expr: l.src, Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(c))}
		}
	}
}

func (l *lexer) skipWS() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) emit(kind tokenKind, text string) { l.emitAt(kind, text, l.pos) }

func (l *lexer) emitAt(kind tokenKind, text string, pos int) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	l.emitAt(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	idx := strings.IndexByte(l.src[l.pos:], quote)
	if idx < 0 {
		return &SyntaxError{Expr: l.src, Pos: start, Msg: "unterminated string literal"}
	}
	text := l.src[l.pos : l.pos+idx]
	l.pos += idx + 1
	l.emitAt(tokString, text, start)
	return nil
}

func (l *lexer) lexName() {
	start := l.pos
	for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
		l.pos++
	}
	// Allow one ':' for prefixed names (not followed by another ':').
	if l.pos < len(l.src) && l.src[l.pos] == ':' && l.peekAt(1) != ':' && l.pos+1 < len(l.src) && isNameStart(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
	}
	l.emitAt(tokIdent, l.src[start:l.pos], start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || isDigit(c)
}
