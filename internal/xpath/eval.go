package xpath

import (
	"fmt"

	"axml/internal/xmltree"
)

// Compiled is an executable XPath expression.
type Compiled struct {
	Source string
	Root   Expr
}

func (c *Compiled) String() string { return c.Root.String() }

// Context carries the dynamic evaluation state.
type Context struct {
	// Node is the context node.
	Node *xmltree.Node
	// Pos and Size are the 1-based context position and size, used by
	// position() and last(). Zero values mean "1 of 1".
	Pos, Size int
	// Vars binds $variables. May be nil.
	Vars map[string]Value
}

func (c *Context) position() float64 {
	if c.Pos == 0 {
		return 1
	}
	return float64(c.Pos)
}

func (c *Context) last() float64 {
	if c.Size == 0 {
		return 1
	}
	return float64(c.Size)
}

// EvalError reports a dynamic evaluation failure.
type EvalError struct {
	Expr string
	Msg  string
}

func (e *EvalError) Error() string { return fmt.Sprintf("xpath: eval %q: %s", e.Expr, e.Msg) }

// Eval evaluates the expression in the given context.
func (c *Compiled) Eval(ctx *Context) (Value, error) {
	return evalExpr(c.Root, ctx)
}

// Select evaluates the expression and coerces the result to a node-set.
// Non-node results yield an error.
func (c *Compiled) Select(n *xmltree.Node) ([]*xmltree.Node, error) {
	v, err := c.Eval(&Context{Node: n})
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, &EvalError{Expr: c.Source, Msg: fmt.Sprintf("expected node-set, got %T", v)}
	}
	return ns, nil
}

// EvalBool evaluates and coerces to boolean.
func (c *Compiled) EvalBool(ctx *Context) (bool, error) {
	v, err := c.Eval(ctx)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// EvalString evaluates and coerces to string.
func (c *Compiled) EvalString(ctx *Context) (string, error) {
	v, err := c.Eval(ctx)
	if err != nil {
		return "", err
	}
	return v.Str(), nil
}

// EvalNumber evaluates and coerces to number.
func (c *Compiled) EvalNumber(ctx *Context) (float64, error) {
	v, err := c.Eval(ctx)
	if err != nil {
		return 0, err
	}
	return v.Number(), nil
}

func evalExpr(e Expr, ctx *Context) (Value, error) {
	switch v := e.(type) {
	case NumberLit:
		return Number(v), nil
	case StringLit:
		return String(v), nil
	case VarRef:
		if ctx.Vars == nil {
			return nil, &EvalError{Expr: v.String(), Msg: "unbound variable"}
		}
		val, ok := ctx.Vars[string(v)]
		if !ok {
			return nil, &EvalError{Expr: v.String(), Msg: "unbound variable"}
		}
		return val, nil
	case *NegExpr:
		x, err := evalExpr(v.X, ctx)
		if err != nil {
			return nil, err
		}
		return Number(-x.Number()), nil
	case *BinaryExpr:
		return evalBinary(v, ctx)
	case *UnionExpr:
		var out NodeSet
		seen := map[*xmltree.Node]bool{}
		for _, pe := range v.Paths {
			val, err := evalExpr(pe, ctx)
			if err != nil {
				return nil, err
			}
			ns, ok := val.(NodeSet)
			if !ok {
				return nil, &EvalError{Expr: pe.String(), Msg: "union operand is not a node-set"}
			}
			for _, n := range ns {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
		return out, nil
	case *FuncCall:
		return evalFunc(v, ctx)
	case *PathExpr:
		return evalPath(v, ctx)
	default:
		return nil, &EvalError{Expr: fmt.Sprintf("%T", e), Msg: "unknown expression type"}
	}
}

func evalBinary(b *BinaryExpr, ctx *Context) (Value, error) {
	switch b.Op {
	case "or":
		l, err := evalExpr(b.L, ctx)
		if err != nil {
			return nil, err
		}
		if l.Bool() {
			return Boolean(true), nil
		}
		r, err := evalExpr(b.R, ctx)
		if err != nil {
			return nil, err
		}
		return Boolean(r.Bool()), nil
	case "and":
		l, err := evalExpr(b.L, ctx)
		if err != nil {
			return nil, err
		}
		if !l.Bool() {
			return Boolean(false), nil
		}
		r, err := evalExpr(b.R, ctx)
		if err != nil {
			return nil, err
		}
		return Boolean(r.Bool()), nil
	}
	l, err := evalExpr(b.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(b.R, ctx)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		return Boolean(compareValues(b.Op, l, r)), nil
	case "+":
		return Number(l.Number() + r.Number()), nil
	case "-":
		return Number(l.Number() - r.Number()), nil
	case "*":
		return Number(l.Number() * r.Number()), nil
	case "div":
		return Number(l.Number() / r.Number()), nil
	case "mod":
		return Number(modXPath(l.Number(), r.Number())), nil
	default:
		return nil, &EvalError{Expr: b.Op, Msg: "unknown operator"}
	}
}

func modXPath(a, b float64) float64 {
	// XPath mod follows the sign of the dividend (like Go's math.Mod).
	q := a - b*trunc(a/b)
	return q
}

func trunc(f float64) float64 {
	if f < 0 {
		return float64(int64(f))
	}
	return float64(int64(f))
}

func evalPath(p *PathExpr, ctx *Context) (Value, error) {
	var current NodeSet
	switch {
	case p.Filter != nil:
		v, err := evalExpr(p.Filter, ctx)
		if err != nil {
			return nil, err
		}
		if len(p.Steps) == 0 {
			return v, nil
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, &EvalError{Expr: p.Filter.String(), Msg: "path start is not a node-set"}
		}
		current = ns
	case p.Absolute:
		if ctx.Node == nil {
			return nil, &EvalError{Expr: p.String(), Msg: "no context node for absolute path"}
		}
		// XPath absolute paths start at the document node above the root
		// element; the tree model has no such node, so synthesize one.
		// Its Children slice references (does not adopt) the root.
		root := ctx.Node.Root()
		docNode := &xmltree.Node{
			Kind:     xmltree.ElementNode,
			Label:    "#document",
			Children: []*xmltree.Node{root},
		}
		current = NodeSet{docNode}
	default:
		if ctx.Node == nil {
			return nil, &EvalError{Expr: p.String(), Msg: "no context node for relative path"}
		}
		current = NodeSet{ctx.Node}
	}
	for _, step := range p.Steps {
		next, err := applyStep(step, current, ctx)
		if err != nil {
			return nil, err
		}
		current = next
	}
	return current, nil
}

// applyStep maps a node-set through one location step, preserving
// first-visit order and removing duplicates.
func applyStep(st Step, input NodeSet, ctx *Context) (NodeSet, error) {
	var out NodeSet
	seen := map[*xmltree.Node]bool{}
	for _, n := range input {
		candidates := axisNodes(st.Axis, n)
		// candidates may alias the tree's own child slice; never mutate it.
		matched := make([]*xmltree.Node, 0, len(candidates))
		for _, c := range candidates {
			if testMatches(st.Test, st.Axis, c) {
				matched = append(matched, c)
			}
		}
		filtered, err := applyPredicates(st.Preds, matched, ctx)
		if err != nil {
			return nil, err
		}
		for _, c := range filtered {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out, nil
}

func applyPredicates(preds []Expr, nodes []*xmltree.Node, outer *Context) ([]*xmltree.Node, error) {
	current := nodes
	for _, pred := range preds {
		var kept []*xmltree.Node
		size := len(current)
		for i, n := range current {
			pctx := &Context{Node: n, Pos: i + 1, Size: size, Vars: outer.Vars}
			v, err := evalExpr(pred, pctx)
			if err != nil {
				return nil, err
			}
			// A numeric predicate selects by position.
			if num, ok := v.(Number); ok {
				if float64(i+1) == float64(num) {
					kept = append(kept, n)
				}
				continue
			}
			if v.Bool() {
				kept = append(kept, n)
			}
		}
		current = kept
	}
	return current, nil
}

// axisNodes enumerates the nodes on the given axis from n, in document
// order (reverse axes included — see package comment).
func axisNodes(axis Axis, n *xmltree.Node) []*xmltree.Node {
	switch axis {
	case AxisChild:
		return n.Children
	case AxisDescendant:
		var out []*xmltree.Node
		for _, c := range n.Children {
			c.Walk(func(m *xmltree.Node) bool {
				out = append(out, m)
				return true
			})
		}
		return out
	case AxisDescendantOrSelf:
		var out []*xmltree.Node
		n.Walk(func(m *xmltree.Node) bool {
			out = append(out, m)
			return true
		})
		return out
	case AxisSelf:
		return []*xmltree.Node{n}
	case AxisParent:
		if n.Parent == nil {
			return nil
		}
		return []*xmltree.Node{n.Parent}
	case AxisAncestor:
		var out []*xmltree.Node
		for p := n.Parent; p != nil; p = p.Parent {
			out = append(out, p)
		}
		return out
	case AxisAncestorOrSelf:
		var out []*xmltree.Node
		for p := n; p != nil; p = p.Parent {
			out = append(out, p)
		}
		return out
	case AxisAttribute:
		if n.Kind != xmltree.ElementNode {
			return nil
		}
		out := make([]*xmltree.Node, 0, len(n.Attrs))
		for _, a := range n.Attrs {
			out = append(out, &xmltree.Node{
				Kind:   xmltree.AttrNode,
				Label:  a.Name,
				Text:   a.Value,
				Parent: n,
			})
		}
		return out
	case AxisFollowingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		for i, s := range sibs {
			if s == n {
				return sibs[i+1:]
			}
		}
		return nil
	case AxisPrecedingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		for i, s := range sibs {
			if s == n {
				out := make([]*xmltree.Node, i)
				copy(out, sibs[:i])
				return out
			}
		}
		return nil
	default:
		return nil
	}
}

func testMatches(t NodeTest, axis Axis, n *xmltree.Node) bool {
	switch t.Kind {
	case TestNode:
		return true
	case TestText:
		return n.Kind == xmltree.TextNode
	case TestComment:
		return n.Kind == xmltree.CommentNode
	case TestWild:
		if axis == AxisAttribute {
			return n.Kind == xmltree.AttrNode
		}
		return n.Kind == xmltree.ElementNode
	case TestName:
		if axis == AxisAttribute {
			return n.Kind == xmltree.AttrNode && n.Label == t.Name
		}
		return n.Kind == xmltree.ElementNode && n.Label == t.Name
	}
	return false
}
