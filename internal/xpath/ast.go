package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a compiled XPath expression node.
type Expr interface {
	// String renders the expression back to (normalized) XPath syntax.
	String() string
}

// Axis enumerates the supported location-step axes.
type Axis uint8

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisAttribute
	AxisFollowingSibling
	AxisPrecedingSibling
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"self":               AxisSelf,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"attribute":          AxisAttribute,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
}

func (a Axis) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return fmt.Sprintf("axis(%d)", uint8(a))
}

// TestKind enumerates node tests.
type TestKind uint8

const (
	TestName    TestKind = iota // element (or attribute) by name
	TestWild                    // *
	TestText                    // text()
	TestNode                    // node()
	TestComment                 // comment()
)

// NodeTest is the node test of a location step.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName
}

func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestWild:
		return "*"
	case TestText:
		return "text()"
	case TestNode:
		return "node()"
	case TestComment:
		return "comment()"
	}
	return "?"
}

// Step is one location step: axis::test[pred1][pred2]...
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

func (s Step) String() string {
	var sb strings.Builder
	switch s.Axis {
	case AxisChild:
		// default axis, no prefix
	case AxisAttribute:
		sb.WriteByte('@')
	case AxisSelf:
		if s.Test.Kind == TestNode && len(s.Preds) == 0 {
			return "."
		}
		sb.WriteString("self::")
	case AxisParent:
		if s.Test.Kind == TestNode && len(s.Preds) == 0 {
			return ".."
		}
		sb.WriteString("parent::")
	default:
		sb.WriteString(s.Axis.String())
		sb.WriteString("::")
	}
	sb.WriteString(s.Test.String())
	for _, p := range s.Preds {
		sb.WriteByte('[')
		sb.WriteString(p.String())
		sb.WriteByte(']')
	}
	return sb.String()
}

// PathExpr is a location path, optionally rooted ('/...'), optionally
// starting from a primary filter expression (e.g. $v/a/b).
type PathExpr struct {
	Absolute bool // starts at the context node's root
	Filter   Expr // optional start expression (variable, function call, ...)
	Steps    []Step
}

func (p *PathExpr) String() string {
	var sb strings.Builder
	if p.Filter != nil {
		sb.WriteString(p.Filter.String())
		for _, s := range p.Steps {
			sb.WriteByte('/')
			sb.WriteString(s.String())
		}
		return sb.String()
	}
	if p.Absolute {
		sb.WriteByte('/')
	}
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteByte('/')
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// BinaryExpr is an operator application: or, and, =, !=, <, <=, >, >=,
// +, -, *, div, mod.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

// UnionExpr is path1 | path2 | ...
type UnionExpr struct {
	Paths []Expr
}

func (u *UnionExpr) String() string {
	parts := make([]string, len(u.Paths))
	for i, p := range u.Paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, " | ")
}

// NegExpr is unary minus.
type NegExpr struct{ X Expr }

func (n *NegExpr) String() string { return "-" + n.X.String() }

// NumberLit is a numeric literal.
type NumberLit float64

// String renders in plain decimal notation, never exponent form: the
// lexer has no 'e' syntax, so "1e+16" would not survive a reparse.
// NaN/Inf fall back to formatNumber, but the parser rejects literals
// that overflow, so a parsed NumberLit is always finite.
func (n NumberLit) String() string {
	f := float64(n)
	if f != f || f-f != 0 { // NaN or ±Inf without importing math
		return formatNumber(f)
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// StringLit is a string literal.
type StringLit string

func (s StringLit) String() string {
	if strings.Contains(string(s), `"`) {
		return "'" + string(s) + "'"
	}
	return `"` + string(s) + `"`
}

// VarRef is a $variable reference.
type VarRef string

func (v VarRef) String() string { return "$" + string(v) }

// FuncCall is a core-library (or registered extension) function call.
type FuncCall struct {
	Name string
	Args []Expr
}

func (f *FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Variables returns the set of variable names referenced by e, in
// first-occurrence order. The xquery compiler uses this for dependency
// analysis (which clauses a predicate may be pushed below).
func Variables(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case VarRef:
			if !seen[string(v)] {
				seen[string(v)] = true
				out = append(out, string(v))
			}
		case *PathExpr:
			if v.Filter != nil {
				walk(v.Filter)
			}
			for _, s := range v.Steps {
				for _, p := range s.Preds {
					walk(p)
				}
			}
		case *BinaryExpr:
			walk(v.L)
			walk(v.R)
		case *UnionExpr:
			for _, p := range v.Paths {
				walk(p)
			}
		case *NegExpr:
			walk(v.X)
		case *FuncCall:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}
