package xpath

import (
	"math"
	"strings"
	"testing"

	"axml/internal/xmltree"
)

const catalogXML = `<catalog>
  <item id="1" cat="furniture"><name>chair</name><price>30</price></item>
  <item id="2" cat="furniture"><name>desk</name><price>120</price></item>
  <item id="3" cat="light"><name>lamp</name><price>15</price></item>
  <note>seasonal sale</note>
</catalog>`

func doc(t *testing.T) *xmltree.Node {
	t.Helper()
	n, err := xmltree.Parse(catalogXML)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return n
}

func sel(t *testing.T, n *xmltree.Node, expr string) []*xmltree.Node {
	t.Helper()
	c, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	ns, err := c.Select(n)
	if err != nil {
		t.Fatalf("Select(%q): %v", expr, err)
	}
	return ns
}

func evalStr(t *testing.T, n *xmltree.Node, expr string) string {
	t.Helper()
	c, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	s, err := c.EvalString(&Context{Node: n})
	if err != nil {
		t.Fatalf("EvalString(%q): %v", expr, err)
	}
	return s
}

func evalNum(t *testing.T, n *xmltree.Node, expr string) float64 {
	t.Helper()
	c := MustCompile(expr)
	f, err := c.EvalNumber(&Context{Node: n})
	if err != nil {
		t.Fatalf("EvalNumber(%q): %v", expr, err)
	}
	return f
}

func evalBool(t *testing.T, n *xmltree.Node, expr string) bool {
	t.Helper()
	c := MustCompile(expr)
	b, err := c.EvalBool(&Context{Node: n})
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", expr, err)
	}
	return b
}

func TestChildSteps(t *testing.T) {
	d := doc(t)
	if got := len(sel(t, d, "item")); got != 3 {
		t.Errorf("item count = %d, want 3", got)
	}
	if got := len(sel(t, d, "item/name")); got != 3 {
		t.Errorf("item/name count = %d", got)
	}
	if got := len(sel(t, d, "missing")); got != 0 {
		t.Errorf("missing = %d", got)
	}
}

func TestAbsoluteAndDescendant(t *testing.T) {
	d := doc(t)
	name := d.FindAll("name")[0]
	// absolute path from a deep context node
	if got := len(sel(t, name, "/catalog/item")); got != 3 {
		t.Errorf("/catalog/item = %d", got)
	}
	if got := len(sel(t, d, "//name")); got != 3 {
		t.Errorf("//name = %d", got)
	}
	if got := len(sel(t, d, "//*")); got != 11 {
		t.Errorf("//* = %d, want 11", got)
	}
	if got := len(sel(t, d, "descendant::name")); got != 3 {
		t.Errorf("descendant::name = %d", got)
	}
}

func TestWildcardAndText(t *testing.T) {
	d := doc(t)
	if got := len(sel(t, d, "*")); got != 4 {
		t.Errorf("* = %d, want 4", got)
	}
	texts := sel(t, d, "note/text()")
	if len(texts) != 1 || texts[0].Text != "seasonal sale" {
		t.Errorf("note/text() = %v", texts)
	}
}

func TestAttributes(t *testing.T) {
	d := doc(t)
	attrs := sel(t, d, "item/@id")
	if len(attrs) != 3 {
		t.Fatalf("item/@id = %d", len(attrs))
	}
	if attrs[0].Kind != xmltree.AttrNode || attrs[0].Text != "1" {
		t.Errorf("first @id = %+v", attrs[0])
	}
	if got := len(sel(t, d, "item/@*")); got != 6 {
		t.Errorf("item/@* = %d, want 6", got)
	}
	if got := evalStr(t, d, "string(item[2]/@cat)"); got != "furniture" {
		t.Errorf("item[2]/@cat = %q", got)
	}
}

func TestPredicates(t *testing.T) {
	d := doc(t)
	cheap := sel(t, d, "item[price < 100]")
	if len(cheap) != 2 {
		t.Errorf("cheap items = %d, want 2", len(cheap))
	}
	byAttr := sel(t, d, `item[@cat="light"]`)
	if len(byAttr) != 1 || byAttr[0].FirstChildElement("name").TextContent() != "lamp" {
		t.Errorf("light items wrong")
	}
	pos := sel(t, d, "item[2]")
	if len(pos) != 1 || pos[0].FirstChildElement("name").TextContent() != "desk" {
		t.Errorf("item[2] wrong")
	}
	lastSel := sel(t, d, "item[last()]")
	if len(lastSel) != 1 || lastSel[0].FirstChildElement("name").TextContent() != "lamp" {
		t.Errorf("item[last()] wrong")
	}
	if got := len(sel(t, d, "item[position() > 1]")); got != 2 {
		t.Errorf("position()>1 = %d", got)
	}
	chained := sel(t, d, `item[@cat="furniture"][2]`)
	if len(chained) != 1 || chained[0].FirstChildElement("name").TextContent() != "desk" {
		t.Errorf("chained predicate wrong")
	}
	existence := sel(t, d, "item[name]")
	if len(existence) != 3 {
		t.Errorf("item[name] = %d", len(existence))
	}
}

func TestAxes(t *testing.T) {
	d := doc(t)
	secondItem := sel(t, d, "item[2]")[0]
	if got := len(sel(t, secondItem, "parent::catalog")); got != 1 {
		t.Errorf("parent::catalog = %d", got)
	}
	if got := len(sel(t, secondItem, "..")); got != 1 {
		t.Errorf(".. = %d", got)
	}
	if got := len(sel(t, secondItem, "following-sibling::item")); got != 1 {
		t.Errorf("following-sibling::item = %d", got)
	}
	if got := len(sel(t, secondItem, "preceding-sibling::item")); got != 1 {
		t.Errorf("preceding-sibling::item = %d", got)
	}
	name := secondItem.FirstChildElement("name")
	if got := len(sel(t, name, "ancestor::*")); got != 2 {
		t.Errorf("ancestor::* = %d", got)
	}
	if got := len(sel(t, name, "ancestor-or-self::*")); got != 3 {
		t.Errorf("ancestor-or-self::* = %d", got)
	}
	if got := len(sel(t, name, "self::name")); got != 1 {
		t.Errorf("self::name = %d", got)
	}
	if got := len(sel(t, name, "self::other")); got != 0 {
		t.Errorf("self::other = %d", got)
	}
}

func TestUnion(t *testing.T) {
	d := doc(t)
	ns := sel(t, d, "item/name | item/price | note")
	if len(ns) != 7 {
		t.Errorf("union = %d, want 7", len(ns))
	}
	// Duplicates are removed.
	dup := sel(t, d, "item | item")
	if len(dup) != 3 {
		t.Errorf("item|item = %d, want 3", len(dup))
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	d := doc(t)
	if got := evalNum(t, d, "1 + 2 * 3"); got != 7 {
		t.Errorf("1+2*3 = %v", got)
	}
	if got := evalNum(t, d, "(1 + 2) * 3"); got != 9 {
		t.Errorf("(1+2)*3 = %v", got)
	}
	if got := evalNum(t, d, "10 div 4"); got != 2.5 {
		t.Errorf("10 div 4 = %v", got)
	}
	if got := evalNum(t, d, "10 mod 3"); got != 1 {
		t.Errorf("10 mod 3 = %v", got)
	}
	if got := evalNum(t, d, "-item[1]/price"); got != -30 {
		t.Errorf("-price = %v", got)
	}
	if !evalBool(t, d, "2 < 3 and 3 <= 3") {
		t.Error("2<3 and 3<=3 should be true")
	}
	if !evalBool(t, d, "1 > 2 or 5 >= 5") {
		t.Error("or should be true")
	}
	if !evalBool(t, d, `"abc" = "abc"`) {
		t.Error("string equality failed")
	}
	if !evalBool(t, d, `"abc" != "abd"`) {
		t.Error("string inequality failed")
	}
}

func TestExistentialNodeSetComparison(t *testing.T) {
	d := doc(t)
	// Some price < 20 (lamp)?
	if !evalBool(t, d, "item/price < 20") {
		t.Error("existential < failed")
	}
	// No price > 1000.
	if evalBool(t, d, "item/price > 1000") {
		t.Error("existential > should be false")
	}
	// node-set vs node-set: any name equals any name of other set
	if !evalBool(t, d, `item[1]/name = //name`) {
		t.Error("ns=ns comparison failed")
	}
}

func TestCoreFunctions(t *testing.T) {
	d := doc(t)
	if got := evalNum(t, d, "count(//item)"); got != 3 {
		t.Errorf("count = %v", got)
	}
	if got := evalNum(t, d, "sum(item/price)"); got != 165 {
		t.Errorf("sum = %v", got)
	}
	if got := evalStr(t, d, "name(item[1])"); got != "item" {
		t.Errorf("name() = %q", got)
	}
	if got := evalStr(t, d, `concat("a", "-", "b")`); got != "a-b" {
		t.Errorf("concat = %q", got)
	}
	if !evalBool(t, d, `contains(note, "sale")`) {
		t.Error("contains failed")
	}
	if !evalBool(t, d, `starts-with(note, "seasonal")`) {
		t.Error("starts-with failed")
	}
	if got := evalStr(t, d, `substring("hello", 2, 3)`); got != "ell" {
		t.Errorf("substring = %q", got)
	}
	if got := evalStr(t, d, `substring("hello", 2)`); got != "ello" {
		t.Errorf("substring/2 = %q", got)
	}
	if got := evalStr(t, d, `substring-before("a=b", "=")`); got != "a" {
		t.Errorf("substring-before = %q", got)
	}
	if got := evalStr(t, d, `substring-after("a=b", "=")`); got != "b" {
		t.Errorf("substring-after = %q", got)
	}
	if got := evalNum(t, d, `string-length("héllo")`); got != 5 {
		t.Errorf("string-length = %v", got)
	}
	if got := evalStr(t, d, `normalize-space("  a  b ")`); got != "a b" {
		t.Errorf("normalize-space = %q", got)
	}
	if got := evalNum(t, d, "floor(2.7)"); got != 2 {
		t.Errorf("floor = %v", got)
	}
	if got := evalNum(t, d, "ceiling(2.1)"); got != 3 {
		t.Errorf("ceiling = %v", got)
	}
	if got := evalNum(t, d, "round(2.5)"); got != 3 {
		t.Errorf("round = %v", got)
	}
	if !evalBool(t, d, "not(false())") {
		t.Error("not/false failed")
	}
	if !evalBool(t, d, "boolean(1)") {
		t.Error("boolean(1) failed")
	}
	if got := evalNum(t, d, `number("42")`); got != 42 {
		t.Errorf("number = %v", got)
	}
	if got := evalStr(t, d, "string(12)"); got != "12" {
		t.Errorf("string(12) = %q", got)
	}
	if got := evalStr(t, d, "local-name(item[1])"); got != "item" {
		t.Errorf("local-name = %q", got)
	}
}

func TestVariables(t *testing.T) {
	d := doc(t)
	c := MustCompile("$x/name")
	items := sel(t, d, "item")
	v, err := c.Eval(&Context{Node: d, Vars: map[string]Value{"x": NodeSet(items)}})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	ns := v.(NodeSet)
	if len(ns) != 3 {
		t.Errorf("$x/name = %d", len(ns))
	}
	// Scalar variable in arithmetic.
	c2 := MustCompile("$n + 1")
	v2, err := c2.Eval(&Context{Node: d, Vars: map[string]Value{"n": Number(41)}})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if v2.Number() != 42 {
		t.Errorf("$n+1 = %v", v2)
	}
	// Unbound variable errors.
	if _, err := MustCompile("$ghost").Eval(&Context{Node: d}); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestVariableInPredicate(t *testing.T) {
	d := doc(t)
	c := MustCompile("item[price < $limit]/name")
	v, err := c.Eval(&Context{Node: d, Vars: map[string]Value{"limit": Number(100)}})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	ns := v.(NodeSet)
	if len(ns) != 2 {
		t.Errorf("parameterized predicate = %d nodes", len(ns))
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", "item[", "item]", "//", "@", "item/", "1 +", "item[@]",
		"$", "unknown::a", "f(", `"unterminated`, "a b", "!", "a:::b",
		"text(x)",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	d := doc(t)
	// Union of non-node-sets.
	if _, err := MustCompile("1 | 2").Eval(&Context{Node: d}); err == nil {
		t.Error("union of numbers should error")
	}
	// count() of a number.
	if _, err := MustCompile("count(1)").Eval(&Context{Node: d}); err == nil {
		t.Error("count(1) should error")
	}
	// Path from non-node-set.
	if _, err := MustCompile("count(1 div 0)/a").Eval(&Context{Node: d}); err == nil {
		t.Error("path from number should error")
	}
	// Unknown function.
	if _, err := MustCompile("nope()").Eval(&Context{Node: d}); err == nil {
		t.Error("unknown function should error")
	}
	// Wrong arity (checked at eval time).
	if _, err := MustCompile("position(1)").Eval(&Context{Node: d}); err == nil {
		t.Error("position(1) should error at eval")
	}
}

func TestNumberFormatting(t *testing.T) {
	cases := map[string]string{
		"1 div 0":    "Infinity",
		"-1 div 0":   "-Infinity",
		"0 div 0":    "NaN",
		"2 + 2":      "4",
		"1 div 4":    "0.25",
		"-(3)":       "-3",
		"round(1.5)": "2",
	}
	d := doc(t)
	for expr, want := range cases {
		if got := evalStr(t, d, "string("+expr+")"); got != want {
			t.Errorf("string(%s) = %q, want %q", expr, got, want)
		}
	}
	if !math.IsNaN(evalNum(t, d, `number("abc")`)) {
		t.Error(`number("abc") should be NaN`)
	}
}

func TestStringRendering(t *testing.T) {
	// Compiled expressions render back to parseable XPath.
	exprs := []string{
		"item[price < 100]/name",
		"//name",
		"/catalog/item[2]",
		"count(//item) > 2",
		`concat("a", "b")`,
		"$v/a | $w/b",
		"item[@id = 1]",
		"..",
		".",
		"ancestor::*",
	}
	d := doc(t)
	for _, src := range exprs {
		c := MustCompile(src)
		rendered := c.String()
		c2, err := Compile(rendered)
		if err != nil {
			t.Errorf("re-compile of %q (from %q) failed: %v", rendered, src, err)
			continue
		}
		// Evaluate both against the fixture where possible and compare.
		v1, err1 := c.Eval(&Context{Node: d, Vars: map[string]Value{"v": NodeSet{d}, "w": NodeSet{d}}})
		v2, err2 := c2.Eval(&Context{Node: d, Vars: map[string]Value{"v": NodeSet{d}, "w": NodeSet{d}}})
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("eval divergence for %q vs %q", src, rendered)
			continue
		}
		if err1 == nil && v1.Str() != v2.Str() {
			t.Errorf("value divergence for %q: %q vs %q", src, v1.Str(), v2.Str())
		}
	}
}

func TestVariablesHelper(t *testing.T) {
	c := MustCompile("$a/x[$b = 1] | f($c, $a)")
	vars := Variables(c.Root)
	want := []string{"a", "b", "c"}
	if len(vars) != len(want) {
		t.Fatalf("Variables = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Variables[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
}

func TestDeepNesting(t *testing.T) {
	// Build a deep chain a/a/a/... and query with //.
	depth := 200
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<a>")
	}
	sb.WriteString("<leaf/>")
	for i := 0; i < depth; i++ {
		sb.WriteString("</a>")
	}
	n, err := xmltree.Parse(sb.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := len(sel(t, n, "//leaf")); got != 1 {
		t.Errorf("//leaf = %d", got)
	}
	if got := len(sel(t, n, "//a")); got != depth {
		t.Errorf("//a = %d, want %d", got, depth)
	}
}

func TestPositionWithinPredicateOfSecondStep(t *testing.T) {
	d := doc(t)
	// First price of each item: 3 nodes, all position 1 within their step.
	ns := sel(t, d, "item/price[1]")
	if len(ns) != 3 {
		t.Errorf("item/price[1] = %d, want 3 (per-input-node positions)", len(ns))
	}
}
