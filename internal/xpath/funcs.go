package xpath

import (
	"fmt"
	"math"
	"strings"

	"axml/internal/xmltree"
)

// evalFunc dispatches the XPath core function library.
func evalFunc(f *FuncCall, ctx *Context) (Value, error) {
	argn := func(want int) error {
		if len(f.Args) != want {
			return &EvalError{Expr: f.Name, Msg: fmt.Sprintf("takes %d argument(s), got %d", want, len(f.Args))}
		}
		return nil
	}
	eval := func(i int) (Value, error) { return evalExpr(f.Args[i], ctx) }

	switch f.Name {
	case "position":
		if err := argn(0); err != nil {
			return nil, err
		}
		return Number(ctx.position()), nil
	case "last":
		if err := argn(0); err != nil {
			return nil, err
		}
		return Number(ctx.last()), nil
	case "true":
		if err := argn(0); err != nil {
			return nil, err
		}
		return Boolean(true), nil
	case "false":
		if err := argn(0); err != nil {
			return nil, err
		}
		return Boolean(false), nil
	case "not":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Boolean(!v.Bool()), nil
	case "boolean":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Boolean(v.Bool()), nil
	case "number":
		if len(f.Args) == 0 {
			return Number(stringToNumber(nodeStringValue(ctx.Node))), nil
		}
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Number(v.Number()), nil
	case "string":
		if len(f.Args) == 0 {
			return String(nodeStringValue(ctx.Node)), nil
		}
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return String(v.Str()), nil
	case "count":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, &EvalError{Expr: f.Name, Msg: "argument is not a node-set"}
		}
		return Number(len(ns)), nil
	case "sum":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, &EvalError{Expr: f.Name, Msg: "argument is not a node-set"}
		}
		total := 0.0
		for _, n := range ns {
			total += stringToNumber(nodeStringValue(n))
		}
		return Number(total), nil
	case "name", "local-name":
		if len(f.Args) == 0 {
			return String(nodeName(ctx.Node, f.Name == "local-name")), nil
		}
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok || len(ns) == 0 {
			return String(""), nil
		}
		return String(nodeName(ns[0], f.Name == "local-name")), nil
	case "concat":
		if len(f.Args) < 2 {
			return nil, &EvalError{Expr: f.Name, Msg: "takes at least 2 arguments"}
		}
		var sb strings.Builder
		for i := range f.Args {
			v, err := eval(i)
			if err != nil {
				return nil, err
			}
			sb.WriteString(v.Str())
		}
		return String(sb.String()), nil
	case "contains":
		if err := argn(2); err != nil {
			return nil, err
		}
		a, err := eval(0)
		if err != nil {
			return nil, err
		}
		b, err := eval(1)
		if err != nil {
			return nil, err
		}
		return Boolean(strings.Contains(a.Str(), b.Str())), nil
	case "starts-with":
		if err := argn(2); err != nil {
			return nil, err
		}
		a, err := eval(0)
		if err != nil {
			return nil, err
		}
		b, err := eval(1)
		if err != nil {
			return nil, err
		}
		return Boolean(strings.HasPrefix(a.Str(), b.Str())), nil
	case "substring":
		if len(f.Args) != 2 && len(f.Args) != 3 {
			return nil, &EvalError{Expr: f.Name, Msg: "takes 2 or 3 arguments"}
		}
		sv, err := eval(0)
		if err != nil {
			return nil, err
		}
		startV, err := eval(1)
		if err != nil {
			return nil, err
		}
		s := []rune(sv.Str())
		// XPath substring is 1-based with round() semantics.
		start := int(math.Round(startV.Number()))
		end := len(s) + 1
		if len(f.Args) == 3 {
			lenV, err := eval(2)
			if err != nil {
				return nil, err
			}
			end = start + int(math.Round(lenV.Number()))
		}
		if start < 1 {
			start = 1
		}
		if end > len(s)+1 {
			end = len(s) + 1
		}
		if start >= end {
			return String(""), nil
		}
		return String(string(s[start-1 : end-1])), nil
	case "substring-before", "substring-after":
		if err := argn(2); err != nil {
			return nil, err
		}
		a, err := eval(0)
		if err != nil {
			return nil, err
		}
		b, err := eval(1)
		if err != nil {
			return nil, err
		}
		idx := strings.Index(a.Str(), b.Str())
		if idx < 0 {
			return String(""), nil
		}
		if f.Name == "substring-before" {
			return String(a.Str()[:idx]), nil
		}
		return String(a.Str()[idx+len(b.Str()):]), nil
	case "string-length":
		if len(f.Args) == 0 {
			return Number(len([]rune(nodeStringValue(ctx.Node)))), nil
		}
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Number(len([]rune(v.Str()))), nil
	case "normalize-space":
		var s string
		if len(f.Args) == 0 {
			s = nodeStringValue(ctx.Node)
		} else {
			if err := argn(1); err != nil {
				return nil, err
			}
			v, err := eval(0)
			if err != nil {
				return nil, err
			}
			s = v.Str()
		}
		return String(strings.Join(strings.Fields(s), " ")), nil
	case "floor":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Number(math.Floor(v.Number())), nil
	case "ceiling":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Number(math.Ceil(v.Number())), nil
	case "round":
		if err := argn(1); err != nil {
			return nil, err
		}
		v, err := eval(0)
		if err != nil {
			return nil, err
		}
		return Number(math.Round(v.Number())), nil
	default:
		return nil, &EvalError{Expr: f.Name, Msg: "unknown function"}
	}
}

func nodeName(n *xmltree.Node, local bool) string {
	if n == nil {
		return ""
	}
	name := ""
	switch n.Kind {
	case xmltree.ElementNode, xmltree.AttrNode, xmltree.ProcInstNode:
		name = n.Label
	}
	if local {
		if i := strings.LastIndexByte(name, ':'); i >= 0 {
			return name[i+1:]
		}
	}
	return name
}
