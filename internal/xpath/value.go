package xpath

import (
	"math"
	"strconv"
	"strings"

	"axml/internal/xmltree"
)

// Value is the XPath 1.0 value domain: node-set, boolean, number, string.
type Value interface {
	// Bool converts the value per the boolean() rules.
	Bool() bool
	// Number converts the value per the number() rules.
	Number() float64
	// Str converts the value per the string() rules.
	Str() string
}

// NodeSet is an ordered, duplicate-free set of nodes (first-visit order
// acts as document order in this engine).
type NodeSet []*xmltree.Node

// Bool reports whether the node-set is non-empty.
func (ns NodeSet) Bool() bool { return len(ns) > 0 }

// Number converts the string-value of the first node.
func (ns NodeSet) Number() float64 { return stringToNumber(ns.Str()) }

// Str returns the string-value of the first node, or "".
func (ns NodeSet) Str() string {
	if len(ns) == 0 {
		return ""
	}
	return nodeStringValue(ns[0])
}

// Boolean is an XPath boolean.
type Boolean bool

func (b Boolean) Bool() bool { return bool(b) }

// Number converts true→1, false→0.
func (b Boolean) Number() float64 {
	if b {
		return 1
	}
	return 0
}

func (b Boolean) Str() string {
	if b {
		return "true"
	}
	return "false"
}

// Number is an XPath number (IEEE 754 double).
type Number float64

// Bool reports whether the number is neither zero nor NaN.
func (n Number) Bool() bool { return float64(n) != 0 && !math.IsNaN(float64(n)) }

func (n Number) Number() float64 { return float64(n) }

func (n Number) Str() string { return formatNumber(float64(n)) }

// String is an XPath string.
type String string

// Bool reports whether the string is non-empty.
func (s String) Bool() bool { return len(s) > 0 }

func (s String) Number() float64 { return stringToNumber(string(s)) }

func (s String) Str() string { return string(s) }

// nodeStringValue implements the XPath string-value of a node.
func nodeStringValue(n *xmltree.Node) string { return n.TextContent() }

func stringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// formatNumber renders a float per XPath string() rules: integers have
// no decimal point, NaN is "NaN", infinities are "Infinity".
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// compareValues implements XPath comparison semantics including the
// existential rules for node-sets.
func compareValues(op string, a, b Value) bool {
	nsA, aIsNS := a.(NodeSet)
	nsB, bIsNS := b.(NodeSet)
	switch {
	case aIsNS && bIsNS:
		for _, x := range nsA {
			for _, y := range nsB {
				if cmpAtomic(op, String(nodeStringValue(x)), String(nodeStringValue(y))) {
					return true
				}
			}
		}
		return false
	case aIsNS:
		for _, x := range nsA {
			if cmpAtomic(op, String(nodeStringValue(x)), b) {
				return true
			}
		}
		return false
	case bIsNS:
		for _, y := range nsB {
			if cmpAtomic(op, a, String(nodeStringValue(y))) {
				return true
			}
		}
		return false
	default:
		return cmpAtomic(op, a, b)
	}
}

// cmpAtomic compares two non-node-set values.
func cmpAtomic(op string, a, b Value) bool {
	switch op {
	case "=", "!=":
		var eq bool
		switch {
		case isBool(a) || isBool(b):
			eq = a.Bool() == b.Bool()
		case isNumber(a) || isNumber(b):
			eq = a.Number() == b.Number()
		default:
			eq = a.Str() == b.Str()
		}
		if op == "=" {
			return eq
		}
		return !eq
	case "<":
		return a.Number() < b.Number()
	case "<=":
		return a.Number() <= b.Number()
	case ">":
		return a.Number() > b.Number()
	case ">=":
		return a.Number() >= b.Number()
	}
	return false
}

func isBool(v Value) bool   { _, ok := v.(Boolean); return ok }
func isNumber(v Value) bool { _, ok := v.(Number); return ok }
