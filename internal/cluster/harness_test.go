package cluster

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestHarnessFederationSmoke runs the federation against real OS
// processes: one coordinator and two member axmlpeer processes over
// TCP. Member A hosts the catalog and a full-copy view, member B sends
// all the queries; one STEP moves the copy to B, and every process
// shuts down gracefully on SIGTERM. This is the CI federation-smoke
// target.
func TestHarnessFederationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	h, err := NewHarness(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	coord, err := h.Start(PeerSpec{ID: "coord", Coordinator: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Start(PeerSpec{ID: "a",
		Docs:      map[string]string{"catalog": catalogXML(40)},
		Join:      coord.Addr,
		Heartbeat: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Start(PeerSpec{ID: "b", Join: coord.Addr, Heartbeat: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cc := dialT(t, coord.Addr)
	waitFor(t, 10*time.Second, "both members to register", func() bool {
		snap, err := cc.Stats(ctx)
		return err == nil && snap.Gauges["cluster.members"] == 2
	})

	ca := dialT(t, a.Addr)
	if err := ca.DefineView(ctx, "copy", `doc("catalog")`); err != nil {
		t.Fatal(err)
	}

	// All demand arrives at B. The first queries may race B's route
	// discovery (a heartbeat away), so poll the first one in.
	cb := dialT(t, b.Addr)
	waitFor(t, 10*time.Second, "B to forward the first query", func() bool {
		out, err := cb.QueryAll(`doc("catalog")/item/name`)
		return err == nil && len(out) == 40
	})
	for i := 0; i < 12; i++ {
		out, err := cb.QueryAll(`doc("catalog")/item/name`)
		if err != nil || len(out) != 40 {
			t.Fatalf("forwarded query %d: rows=%d err=%v", i, len(out), err)
		}
	}

	decisions, err := cc.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var moved bool
	for _, d := range decisions {
		if d.View == "copy" && d.To == "b" && (d.Action == "migrate" || d.Action == "replicate") {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("STEP over real TCP did not move the copy to b: %+v", decisions)
	}

	// B serves the adopted copy locally now.
	lines, err := cb.Placements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLine(lines, "copy@b") {
		t.Fatalf("b's placements after migrate = %v", lines)
	}
	if out, err := cb.QueryAll(`doc("catalog")/item/name`); err != nil || len(out) != 40 {
		t.Fatalf("query after migration: rows=%d err=%v", len(out), err)
	}

	// The next round's fresh demand exports surface the landed copy in
	// the coordinator's aggregated placement map and decision log.
	if _, err := cc.Step(ctx); err != nil {
		t.Fatal(err)
	}
	lines, err = cc.Placements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLine(lines, "copy@b") || !containsAction(lines) {
		t.Fatalf("coordinator placements = %v, want copy@b and a decision", lines)
	}

	// Graceful shutdown: SIGTERM drains and exits cleanly, within the
	// timeout, on every process.
	for _, p := range []*Proc{b, a, coord} {
		if err := p.Stop(10 * time.Second); err != nil {
			t.Errorf("graceful stop of %s: %v\n%s", p.ID, err, p.Output())
		}
	}
	for _, p := range []*Proc{b, a, coord} {
		if !strings.Contains(p.Output(), "shutdown complete") {
			t.Errorf("%s did not report a clean drain:\n%s", p.ID, p.Output())
		}
	}
}

func containsLine(lines []string, want string) bool {
	for _, l := range lines {
		if strings.Contains(l, want) {
			return true
		}
	}
	return false
}

func containsAction(lines []string) bool {
	for _, l := range lines {
		if strings.Contains(l, "migrate") || strings.Contains(l, "replicate") {
			return true
		}
	}
	return false
}
