package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/obs"
	"axml/internal/opt"
	"axml/internal/peer"
	"axml/internal/placement"
	"axml/internal/session"
	"axml/internal/view"
	"axml/internal/wire"
	"axml/internal/xmltree"
	"axml/internal/xquery"
)

// poolCap bounds the idle wire clients kept per remote address.
const poolCap = 4

// memberSelCacheCap bounds the member's per-shape selectivity cache
// (same reset-and-rebuild policy as the in-process controller's).
const memberSelCacheCap = 1024

// MemberConfig tunes one deployment's federation agent.
type MemberConfig struct {
	// ID is this deployment's cluster-wide identity.
	ID string
	// Advertise is the address other members dial to reach this
	// deployment's wire server.
	Advertise string
	// Coordinator is the coordinator's wire address.
	Coordinator string
	// SelfPeer is the served peer inside the local system — where
	// adopted views land and forwarded demand is attributed.
	SelfPeer netsim.PeerID
	// HeartbeatInterval paces HELLO re-registration and route refresh
	// (default 2s).
	HeartbeatInterval time.Duration
	// RPCTimeout bounds each outbound control RPC and each forwarded
	// row read (default 5s).
	RPCTimeout time.Duration
	// Decay ages the local demand counters after each DEMAND export
	// (default 0.5), so consecutive exports report fresh traffic, not
	// the whole history again.
	Decay float64
	// Logger receives membership and actuation events. Nil discards.
	Logger *slog.Logger
	// Metrics receives member counters (cluster.forwarded,
	// cluster.adopted, cluster.shipped). Nil disables.
	Metrics *obs.Registry
}

func (c MemberConfig) filled() MemberConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.Decay <= 0 {
		c.Decay = 0.5
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Member is one deployment's federation agent: it heartbeats the
// coordinator, answers the member-side control verbs (wire.Control)
// and forwards queries over documents other members host
// (wire.Forwarder).
type Member struct {
	cfg   MemberConfig
	sys   *core.System
	self  *peer.Peer
	views *view.Manager
	obs   *placement.Observer

	mu      sync.Mutex
	routes  map[string]string // base document → owning member's address
	members []wire.MemberInfo
	pool    map[string][]*wire.Client
	sel     map[string]float64
	closed  bool
	started bool

	stop chan struct{}
	done chan struct{}
}

// Member serves the member role of the control plane and the
// federated read path.
var (
	_ wire.Control   = (*Member)(nil)
	_ wire.Forwarder = (*Member)(nil)
)

// NewMember builds the agent. obsv is the demand observer the serving
// session feeds (session.WithTrafficSink); the member exports and
// decays it on DEMAND.
func NewMember(cfg MemberConfig, sys *core.System, views *view.Manager, obsv *placement.Observer) (*Member, error) {
	cfg = cfg.filled()
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: member needs an ID")
	}
	self, ok := sys.Peer(cfg.SelfPeer)
	if !ok {
		return nil, fmt.Errorf("cluster: no peer %q in the local system", cfg.SelfPeer)
	}
	return &Member{
		cfg:    cfg,
		sys:    sys,
		self:   self,
		views:  views,
		obs:    obsv,
		routes: map[string]string{},
		pool:   map[string][]*wire.Client{},
		sel:    map[string]float64{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Start launches the heartbeat loop: periodic HELLO registration at
// the coordinator, whose membership reply refreshes the forwarding
// routes. A failed heartbeat is retried at the next tick.
func (m *Member) Start() {
	m.mu.Lock()
	if m.started || m.closed {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.heartbeat()
}

func (m *Member) heartbeat() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		if err := m.hello(); err != nil {
			m.cfg.Logger.Warn("heartbeat failed", "coordinator", m.cfg.Coordinator, "err", err)
		}
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
	}
}

// hello registers with the coordinator and rebuilds the routing table
// from the returned membership: each base document maps to the first
// other member advertising it.
func (m *Member) hello() error {
	if m.cfg.Coordinator == "" {
		return nil
	}
	cl, err := m.dial(m.cfg.Coordinator)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.RPCTimeout)
	defer cancel()
	members, err := cl.Hello(ctx, m.describe())
	if err != nil {
		cl.Close()
		return err
	}
	m.put(m.cfg.Coordinator, cl)
	routes := map[string]string{}
	for _, other := range members {
		if other.ID == m.cfg.ID {
			continue
		}
		for _, doc := range other.Docs {
			if _, ok := routes[doc]; !ok {
				routes[doc] = other.Addr
			}
		}
	}
	m.mu.Lock()
	m.routes = routes
	m.members = members
	m.mu.Unlock()
	return nil
}

// describe snapshots this deployment for HELLO: base documents (view
// documents excluded — they travel as views) and view names.
func (m *Member) describe() wire.MemberInfo {
	info := wire.MemberInfo{ID: m.cfg.ID, Addr: m.cfg.Advertise}
	for _, name := range m.self.DocumentNames() {
		if !strings.HasPrefix(name, view.DocPrefix) {
			info.Docs = append(info.Docs, name)
		}
	}
	for _, v := range m.views.Views() {
		info.Views = append(info.Views, v.Name)
	}
	return info
}

// Close deregisters from the coordinator (best effort), stops the
// heartbeat and closes pooled connections. Safe to call more than
// once.
func (m *Member) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	started := m.started
	pool := m.pool
	m.pool = map[string][]*wire.Client{}
	m.mu.Unlock()
	close(m.stop)
	if started {
		<-m.done
	}
	for _, clients := range pool {
		for _, cl := range clients {
			cl.Close()
		}
	}
	if m.cfg.Coordinator != "" {
		if cl, err := wire.Dial(m.cfg.Coordinator,
			wire.WithDialTimeout(m.cfg.RPCTimeout),
			wire.WithIOTimeout(m.cfg.RPCTimeout)); err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), m.cfg.RPCTimeout)
			_ = cl.Bye(ctx, m.cfg.ID)
			cancel()
			cl.Close()
		}
	}
}

// dial returns a pooled client for addr, or dials a fresh one.
func (m *Member) dial(addr string) (*wire.Client, error) {
	m.mu.Lock()
	if list := m.pool[addr]; len(list) > 0 {
		cl := list[len(list)-1]
		m.pool[addr] = list[:len(list)-1]
		m.mu.Unlock()
		return cl, nil
	}
	m.mu.Unlock()
	return wire.Dial(addr,
		wire.WithDialTimeout(m.cfg.RPCTimeout),
		wire.WithIOTimeout(m.cfg.RPCTimeout))
}

// put returns a client to the pool (or closes it when the pool is
// full or the member closed).
func (m *Member) put(addr string, cl *wire.Client) {
	m.mu.Lock()
	if !m.closed && len(m.pool[addr]) < poolCap {
		m.pool[addr] = append(m.pool[addr], cl)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	cl.Close()
}

// Hello is a coordinator verb (wire.Control).
func (m *Member) Hello(wire.MemberInfo) ([]wire.MemberInfo, error) {
	return nil, fmt.Errorf("cluster: HELLO is a coordinator verb, this is member %q", m.cfg.ID)
}

// Bye is a coordinator verb (wire.Control).
func (m *Member) Bye(string) error {
	return fmt.Errorf("cluster: BYE is a coordinator verb, this is member %q", m.cfg.ID)
}

// Step is a coordinator verb (wire.Control).
func (m *Member) Step(context.Context) ([]placement.Decision, error) {
	return nil, fmt.Errorf("cluster: STEP is a coordinator verb, this is member %q", m.cfg.ID)
}

// ClusterPlacements reports nothing on members (wire.Control): the
// server's PLACEMENTS already lists local state.
func (m *Member) ClusterPlacements() ([]view.PlacementInfo, []placement.Decision, bool) {
	return nil, nil, false
}

// Demand builds this deployment's placement export (wire.Control):
// document inventory, view placements, and the observer's decayed
// demand with locally estimated selectivities. Exporting decays the
// counters (export-and-decay), so each round reports the traffic since
// the previous one with EWMA history, exactly like the in-process
// controller's Step.
func (m *Member) Demand(context.Context) (placement.Export, error) {
	e := placement.Export{Member: m.cfg.ID}
	for _, name := range m.self.DocumentNames() {
		if strings.HasPrefix(name, view.DocPrefix) {
			continue
		}
		var bytes int64
		if d, ok := m.self.Document(name); ok && d.Root != nil {
			bytes = int64(d.Root.ByteSize())
		}
		e.Docs = append(e.Docs, placement.DocExport{Name: name, Bytes: bytes})
	}
	baseDocs := map[string]string{}
	for _, def := range m.views.Definitions() {
		if refs := def.Query.DocRefs(); len(refs) > 0 {
			baseDocs[def.Name] = refs[0]
		}
	}
	sizes := map[string]view.PlacementInfo{}
	for _, pi := range m.views.Placements() {
		if prev, ok := sizes[pi.View]; !ok || pi.Bytes > prev.Bytes {
			sizes[pi.View] = pi
		}
	}
	for _, vi := range m.views.Views() {
		base := baseDocs[vi.Name]
		pi := sizes[vi.Name]
		e.Views = append(e.Views, placement.ViewExport{
			Name:    vi.Name,
			Query:   vi.Query,
			Mode:    vi.Mode,
			Origin:  vi.Origin,
			BaseDoc: base,
			Base:    base != "" && m.self.HasDocument(base),
			Bytes:   pi.Bytes,
			Trees:   pi.Trees,
		})
	}
	est := opt.NewEstimator(m.sys)
	loads := m.obs.Loads()
	docs := make([]string, 0, len(loads))
	for doc := range loads {
		docs = append(docs, doc)
	}
	sort.Strings(docs)
	for _, doc := range docs {
		l := placement.LoadExport{Doc: doc}
		keys := make([]string, 0, len(loads[doc]))
		for key := range loads[doc] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			w := loads[doc][key]
			l.Weight += w
			l.Shapes = append(l.Shapes, placement.ShapeExport{
				Key: key, Weight: w, Sel: m.selectivity(est, key),
			})
		}
		e.Loads = append(e.Loads, l)
	}
	m.obs.Decay(m.cfg.Decay)
	return e, nil
}

// selectivity estimates one shape's output fraction with the local
// optimizer statistics, cached per shape (bounded; resets and rebuilds
// lazily under churn).
func (m *Member) selectivity(est *opt.Estimator, shape string) float64 {
	m.mu.Lock()
	s, ok := m.sel[shape]
	if ok {
		m.mu.Unlock()
		return s
	}
	if len(m.sel) >= memberSelCacheCap {
		m.sel = map[string]float64{}
	}
	m.mu.Unlock()
	s = 1
	if q, err := xquery.Parse(shape); err == nil {
		s = est.QuerySelectivity(q)
	}
	m.mu.Lock()
	m.sel[shape] = s
	m.mu.Unlock()
	return s
}

// MigrateView ships the named view to another member (wire.Control):
// snapshot-pinned deep copy here, one ACCEPTVIEW line there, and —
// for a migrate — the local copy is dropped only after the target
// confirmed the landing, so a target dying mid-ship leaves this copy
// authoritative and nothing half-moved anywhere.
func (m *Member) MigrateView(ctx context.Context, name, targetID, targetAddr string, keep bool) error {
	mv, err := m.views.Materialized(name)
	if err != nil {
		return err
	}
	origin := mv.Origin
	if origin == "" {
		origin = m.cfg.ID
	}
	cl, err := m.dial(targetAddr)
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, m.cfg.RPCTimeout)
	err = cl.AcceptView(rctx, name, mv.Query, origin, mv.Root)
	cancel()
	if err != nil {
		cl.Close()
		return fmt.Errorf("cluster: shipping %q to %s: %w", name, targetID, err)
	}
	m.put(targetAddr, cl)
	if mc := m.cfg.Metrics; mc != nil {
		mc.Counter("cluster.shipped").Inc()
	}
	m.cfg.Logger.Info("shipped view", "view", name, "to", targetID, "keep", keep)
	if keep {
		return nil
	}
	sites, ok := m.views.PlacementsOf(name)
	if !ok || len(sites) == 0 {
		return nil
	}
	var errs []error
	for _, at := range sites {
		if err := m.views.DropPlacement(name, at); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("cluster: dropping migrated %q: %v", name, errs[0])
	}
	return nil
}

// DropView drops this deployment's copy of the view (wire.Control).
func (m *Member) DropView(name string) error {
	sites, ok := m.views.PlacementsOf(name)
	if !ok {
		return fmt.Errorf("cluster: no view %q here", name)
	}
	for _, at := range sites {
		if err := m.views.DropPlacement(name, at); err != nil {
			return err
		}
	}
	m.cfg.Logger.Info("dropped view", "view", name)
	return nil
}

// AcceptView lands a view shipped from another member (wire.Control):
// the tree is adopted at the serving peer, registered for query
// rewriting, and marked adopted (no local maintenance — the base data
// lives at origin).
func (m *Member) AcceptView(_ context.Context, name, query, origin string, root *xmltree.Node) error {
	if err := m.views.Adopt(name, query, m.cfg.SelfPeer, root, origin); err != nil {
		return err
	}
	if mc := m.cfg.Metrics; mc != nil {
		mc.Counter("cluster.adopted").Inc()
	}
	m.cfg.Logger.Info("adopted view", "view", name, "origin", origin)
	return nil
}

// ForwardQuery routes a query over a document another member hosts
// (wire.Forwarder): one forwarded QUERYX marked +fwd, demand recorded
// locally — the consumer sits here, and that is what the coordinator
// must see when it decides where the data belongs.
func (m *Member) ForwardQuery(ctx context.Context, src string) (*session.Rows, bool, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, false, nil
	}
	refs := q.DocRefs()
	if len(refs) == 0 {
		return nil, false, nil
	}
	m.mu.Lock()
	addr := m.routes[refs[0]]
	m.mu.Unlock()
	if addr == "" {
		return nil, false, nil
	}
	cl, err := m.dial(addr)
	if err != nil {
		return nil, true, err
	}
	rows, err := cl.Query(ctx, src, session.WithNoTraffic())
	if err != nil {
		cl.Close()
		return nil, true, err
	}
	if m.obs != nil {
		m.obs.ObserveQuery(m.cfg.SelfPeer, view.QueryKey(q), refs)
	}
	if mc := m.cfg.Metrics; mc != nil {
		mc.Counter("cluster.forwarded").Inc()
	}
	pull := func() (*xmltree.Node, error) {
		if rows.Next() {
			return rows.Node(), nil
		}
		return nil, rows.Err()
	}
	closeFn := func() error {
		err := rows.Close()
		if err != nil {
			cl.Close()
			return err
		}
		m.put(addr, cl)
		return nil
	}
	return session.NewRows(pull, closeFn), true, nil
}

// Routes returns the current document→member-address forwarding table
// (tests and diagnostics).
func (m *Member) Routes() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.routes))
	for k, v := range m.routes {
		out[k] = v
	}
	return out
}
