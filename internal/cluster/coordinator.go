package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"axml/internal/netsim"
	"axml/internal/obs"
	"axml/internal/placement"
	"axml/internal/view"
	"axml/internal/wire"
	"axml/internal/xmltree"
)

// CoordinatorConfig tunes a coordinator. The zero value works: every
// knob has a default.
type CoordinatorConfig struct {
	// Placement configures the shared scorer (hysteresis, horizon,
	// replica cap, budgets — keyed by member ID) exactly as for the
	// in-process controller.
	Placement placement.Config
	// RPCTimeout bounds each control RPC (default 5s).
	RPCTimeout time.Duration
	// Retries is how many times a failed DEMAND is re-attempted before
	// the member degrades to its last-known demand (default 2).
	Retries int
	// RetryBackoff is the first retry delay; it doubles per attempt
	// (default 100ms).
	RetryBackoff time.Duration
	// StaleDecay scales an unreachable member's last-known demand per
	// missed round (default 0.5): a down peer ages out of the demand
	// picture smoothly instead of pinning placements forever or
	// vanishing abruptly.
	StaleDecay float64
	// Link models every member↔member hop for the scorer (default
	// netsim.DefaultLink). The coordinator has no measured topology;
	// a uniform link keeps the scorer's relative comparisons honest.
	Link netsim.Link
	// Logger receives round and actuation events. Nil discards.
	Logger *slog.Logger
	// Metrics receives cluster counters (cluster.rounds,
	// cluster.actions.*, cluster.rpc.errors), the members gauge, and a
	// per-round trace. Nil disables.
	Metrics *obs.Registry
}

func (c CoordinatorConfig) filled() CoordinatorConfig {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.StaleDecay <= 0 {
		c.StaleDecay = 0.5
	}
	if c.Link == (netsim.Link{}) {
		c.Link = netsim.DefaultLink
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	// The scorer's own defaults (hysteresis, horizon, …) are filled by
	// placement.NewScorer; only the knobs the coordinator reads
	// directly need filling here.
	if c.Placement.Cooldown <= 0 {
		c.Placement.Cooldown = 2
	}
	if c.Placement.LogSize <= 0 {
		c.Placement.LogSize = 64
	}
	return c
}

// memberState is the coordinator's record of one member.
type memberState struct {
	info wire.MemberInfo
	// export is the last demand report; after a failed collection it
	// holds the decayed stand-in (fail-open).
	export    placement.Export
	hasExport bool
	down      bool
}

// Coordinator aggregates demand across the membership and actuates
// placement decisions through the wire control verbs. It implements
// wire.Control (coordinator role); attach it to a wire.Server and
// members reach it via HELLO/BYE/STEP.
type Coordinator struct {
	cfg CoordinatorConfig

	// stepMu serializes placement rounds (STEP may arrive on several
	// connections); mu guards the member table and decision log and is
	// never held across an RPC.
	stepMu sync.Mutex
	mu     sync.Mutex
	member map[string]*memberState
	round  int
	cool   map[string]int
	log    []placement.Decision
}

// Coordinator serves the coordinator role of the control plane.
var _ wire.Control = (*Coordinator)(nil)

// NewCoordinator builds a coordinator with the config's defaults
// filled in.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		cfg:    cfg.filled(),
		member: map[string]*memberState{},
		cool:   map[string]int{},
	}
	if m := c.cfg.Metrics; m != nil {
		m.Gauge("cluster.members", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.member))
		})
	}
	return c
}

// Hello registers or refreshes a member and returns the current
// membership (wire.Control).
func (c *Coordinator) Hello(info wire.MemberInfo) ([]wire.MemberInfo, error) {
	if info.ID == "" || info.Addr == "" {
		return nil, fmt.Errorf("cluster: HELLO without id/addr")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.member[info.ID]
	if st == nil {
		st = &memberState{}
		c.member[info.ID] = st
		c.cfg.Logger.Info("member joined", "member", info.ID, "addr", info.Addr)
	}
	st.info = info
	st.down = false
	out := make([]wire.MemberInfo, 0, len(c.member))
	for _, m := range c.member {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Bye deregisters a member that is shutting down cleanly
// (wire.Control).
func (c *Coordinator) Bye(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.member[id]; ok {
		delete(c.member, id)
		c.cfg.Logger.Info("member left", "member", id)
	}
	return nil
}

// Demand is a member-side verb (wire.Control).
func (c *Coordinator) Demand(context.Context) (placement.Export, error) {
	return placement.Export{}, fmt.Errorf("cluster: DEMAND is a member verb, this is the coordinator")
}

// MigrateView is a member-side verb (wire.Control).
func (c *Coordinator) MigrateView(context.Context, string, string, string, bool) error {
	return fmt.Errorf("cluster: MIGRATE/REPLICATE are member verbs, this is the coordinator")
}

// DropView is a member-side verb (wire.Control).
func (c *Coordinator) DropView(string) error {
	return fmt.Errorf("cluster: DROPVIEW is a member verb, this is the coordinator")
}

// AcceptView is a member-side verb (wire.Control).
func (c *Coordinator) AcceptView(context.Context, string, string, string, *xmltree.Node) error {
	return fmt.Errorf("cluster: ACCEPTVIEW is a member verb, this is the coordinator")
}

// MemberStatus is one membership row, for PLACEMENTS-style
// introspection and tests.
type MemberStatus struct {
	ID        string
	Addr      string
	Down      bool
	HasDemand bool
}

// MemberStatuses returns the membership with reachability state,
// sorted by ID.
func (c *Coordinator) MemberStatuses() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberStatus, 0, len(c.member))
	for id, m := range c.member {
		out = append(out, MemberStatus{ID: id, Addr: m.info.Addr, Down: m.down, HasDemand: m.hasExport})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ClusterPlacements reports the aggregated cluster-wide placement map
// (from the latest member exports) and the decision log
// (wire.Control).
func (c *Coordinator) ClusterPlacements() ([]view.PlacementInfo, []placement.Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.member))
	for id := range c.member {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var placements []view.PlacementInfo
	for _, id := range ids {
		m := c.member[id]
		if !m.hasExport {
			continue
		}
		for _, v := range m.export.Views {
			base := v.Origin
			if base == "" && v.Base {
				base = id
			}
			placements = append(placements, view.PlacementInfo{
				View:   v.Name,
				At:     netsim.PeerID(id),
				BaseAt: netsim.PeerID(base),
				Mode:   v.Mode,
				Bytes:  v.Bytes,
				Trees:  v.Trees,
			})
		}
	}
	log := make([]placement.Decision, len(c.log))
	copy(log, c.log)
	return placements, log, true
}

// Decisions returns the retained decision log, newest last.
func (c *Coordinator) Decisions() []placement.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]placement.Decision, len(c.log))
	copy(out, c.log)
	return out
}

// viewAgg is the coordinator's merged picture of one view across the
// membership.
type viewAgg struct {
	name    string
	bytes   int64
	sites   []netsim.PeerID
	origin  string
	baseDoc string
	demand  map[netsim.PeerID]float64
	loads   []placement.LoadExport
}

// Step runs one placement round (wire.Control): collect demand from
// every member, plan against the aggregate with the shared scorer,
// actuate the decisions over the wire, then record them. Collection
// and actuation hold no lock — a member answering DEMAND may itself be
// serving queries that call back into this process's PLACEMENTS.
func (c *Coordinator) Step(ctx context.Context) ([]placement.Decision, error) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	c.mu.Lock()
	c.round++
	round := c.round
	type target struct{ id, addr string }
	targets := make([]target, 0, len(c.member))
	for id, m := range c.member {
		targets = append(targets, target{id, m.info.Addr})
	}
	c.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	if m := c.cfg.Metrics; m != nil {
		m.Counter("cluster.rounds").Inc()
	}
	tr := obs.NewTrace(fmt.Sprintf("cluster-round-%d", round))
	tctx := obs.WithTrace(ctx, tr)

	// Phase 1: collect demand. Sequential keeps the round analyzable
	// (membership is small); each member gets the full timeout+retry
	// envelope, and a failure degrades that member to its decayed
	// last-known demand instead of failing the round.
	for _, t := range targets {
		_, sp := obs.StartSpan(tctx, "demand", t.id)
		//axmlvet:ignore lockedcall stepMu serializes rounds and is never taken by RPC handlers; the data mutex c.mu is not held here
		export, err := c.collectDemand(ctx, t.addr)
		c.mu.Lock()
		if st := c.member[t.id]; st != nil {
			if err != nil {
				st.down = true
				if st.hasExport {
					st.export = st.export.Decayed(c.cfg.StaleDecay)
				}
			} else {
				st.down = false
				st.export = export
				st.hasExport = true
			}
		}
		c.mu.Unlock()
		if err != nil {
			sp.Fail(err)
			c.cfg.Logger.Warn("demand collection failed; using decayed last-known demand",
				"member", t.id, "err", err)
			if m := c.cfg.Metrics; m != nil {
				m.Counter("cluster.rpc.errors").Inc()
			}
		}
		sp.End()
	}

	// Phase 2: plan under the lock (pure computation, no I/O).
	_, plsp := obs.StartSpan(tctx, "plan", "")
	decisions, sources, addrs := c.plan(round)
	plsp.End()

	// Phase 3: actuate without the lock — each order ships view bytes
	// between two other processes. A failed actuation is logged and
	// dropped; the next round replans from fresh demand.
	var done []placement.Decision
	for _, d := range decisions {
		_, sp := obs.StartSpan(tctx, "actuate", d.String())
		err := c.actuate(ctx, d, sources[d.View], addrs)
		if err != nil {
			sp.Fail(err)
			c.cfg.Logger.Warn("actuation failed", "decision", d.String(), "err", err)
			if m := c.cfg.Metrics; m != nil {
				m.Counter("cluster.rpc.errors").Inc()
			}
		} else {
			c.cfg.Logger.Info("actuated", "decision", d.String())
			if m := c.cfg.Metrics; m != nil {
				m.Counter("cluster.actions." + d.Action).Inc()
			}
			done = append(done, d)
		}
		sp.End()
	}

	// Phase 4: bookkeeping.
	c.mu.Lock()
	for v, n := range c.cool {
		if n <= 1 {
			delete(c.cool, v)
		} else {
			c.cool[v] = n - 1
		}
	}
	for _, d := range done {
		c.cool[d.View] = c.cfg.Placement.Cooldown
		c.log = append(c.log, d)
	}
	if over := len(c.log) - c.cfg.Placement.LogSize; over > 0 {
		c.log = append([]placement.Decision(nil), c.log[over:]...)
	}
	c.mu.Unlock()
	if m := c.cfg.Metrics; m != nil {
		m.RecordTrace(tr)
	}
	return done, nil
}

// collectDemand fetches one member's export with the timeout/retry/
// backoff envelope. Each attempt dials fresh, so a member that
// restarted between rounds is simply reached again.
func (c *Coordinator) collectDemand(ctx context.Context, addr string) (placement.Export, error) {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return placement.Export{}, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		export, err := c.demandOnce(ctx, addr)
		if err == nil {
			return export, nil
		}
		lastErr = err
	}
	return placement.Export{}, lastErr
}

func (c *Coordinator) demandOnce(ctx context.Context, addr string) (placement.Export, error) {
	cl, err := wire.Dial(addr,
		wire.WithDialTimeout(c.cfg.RPCTimeout),
		wire.WithIOTimeout(c.cfg.RPCTimeout))
	if err != nil {
		return placement.Export{}, err
	}
	defer cl.Close()
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	return cl.Demand(rctx)
}

// plan aggregates the latest exports into per-view loads and scores
// them. It returns the decisions, the shipping source per view (for
// replicate, which the scorer leaves open), and the member address
// book for actuation.
func (c *Coordinator) plan(round int) ([]placement.Decision, map[string]netsim.PeerID, map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()

	alive := map[netsim.PeerID]bool{}
	addrs := map[string]string{}
	ids := make([]string, 0, len(c.member))
	for id, m := range c.member {
		ids = append(ids, id)
		addrs[id] = m.info.Addr
		if !m.down {
			alive[netsim.PeerID(id)] = true
		}
	}
	sort.Strings(ids)

	// Merge the exports: which member holds which view, how big it is,
	// who owns the base, and how much demand each member reported
	// against it (view-doc traffic where the copy serves locally,
	// base-doc traffic where queries were forwarded).
	views := map[string]*viewAgg{}
	usage := map[netsim.PeerID]int64{}
	for _, id := range ids {
		m := c.member[id]
		if !m.hasExport {
			continue
		}
		pid := netsim.PeerID(id)
		for _, v := range m.export.Views {
			a := views[v.Name]
			if a == nil {
				a = &viewAgg{name: v.Name, demand: map[netsim.PeerID]float64{}}
				views[v.Name] = a
			}
			a.sites = append(a.sites, pid)
			if v.Bytes > a.bytes {
				a.bytes = v.Bytes
			}
			if v.Origin != "" {
				a.origin = v.Origin
			} else if v.Base && a.origin == "" {
				a.origin = id
			}
			if v.BaseDoc != "" {
				a.baseDoc = v.BaseDoc
			}
			usage[pid] += v.Bytes
		}
	}
	for _, id := range ids {
		m := c.member[id]
		if !m.hasExport {
			continue
		}
		pid := netsim.PeerID(id)
		for _, a := range views {
			w := m.export.DemandWeight(view.DocPrefix+a.name) + m.export.DemandWeight(a.baseDoc)
			if w > 0 {
				a.demand[pid] += w
			}
			for _, l := range m.export.Loads {
				if l.Doc == view.DocPrefix+a.name || (a.baseDoc != "" && l.Doc == a.baseDoc) {
					a.loads = append(a.loads, l)
				}
			}
		}
	}

	budgets := c.cfg.Placement.Budgets
	defaultBudget := c.cfg.Placement.DefaultBudget
	budget := func(p netsim.PeerID) int64 {
		if b, ok := budgets[p]; ok {
			return b
		}
		return defaultBudget
	}
	scorer := placement.NewScorer(c.cfg.Placement,
		func(from, to netsim.PeerID) netsim.Link {
			if from == to {
				return netsim.Link{}
			}
			return c.cfg.Link
		},
		func(p netsim.PeerID) bool { return alive[p] })

	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)

	var decisions []placement.Decision
	sources := map[string]netsim.PeerID{}
	for _, name := range names {
		a := views[name]
		if len(a.sites) == 0 || c.cool[name] > 0 {
			continue
		}
		vl := placement.ViewLoad{
			Name:     name,
			Base:     netsim.PeerID(a.origin),
			Sites:    a.sites,
			Bytes:    a.bytes,
			Demand:   a.demand,
			PerQuery: placement.PerQueryBytes(a.bytes, a.loads),
			Usage:    usage,
			Budget:   budget,
		}
		d := scorer.Plan(round, vl)
		if d == nil {
			continue
		}
		// Replicate ships from a holding site the scorer did not pick:
		// prefer the origin's copy (freshest), else any live holder.
		src := vl.Sites[0]
		for _, s := range vl.Sites {
			if string(s) == a.origin {
				src = s
				break
			}
		}
		sources[name] = src
		decisions = append(decisions, *d)
		c.cfg.Logger.Debug("planned", "decision", d.String())
	}
	return decisions, sources, addrs
}

// actuate executes one decision over the wire, against the member that
// holds the data to move.
func (c *Coordinator) actuate(ctx context.Context, d placement.Decision, src netsim.PeerID, addrs map[string]string) error {
	rpc := func(addr string, call func(*wire.Client, context.Context) error) error {
		if addr == "" {
			return fmt.Errorf("cluster: no address for decision %s", d.String())
		}
		cl, err := wire.Dial(addr,
			wire.WithDialTimeout(c.cfg.RPCTimeout),
			wire.WithIOTimeout(c.cfg.RPCTimeout))
		if err != nil {
			return err
		}
		defer cl.Close()
		rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		defer cancel()
		return call(cl, rctx)
	}
	switch d.Action {
	case "migrate":
		return rpc(addrs[string(d.From)], func(cl *wire.Client, rctx context.Context) error {
			return cl.MigrateView(rctx, d.View, string(d.To), addrs[string(d.To)], false)
		})
	case "replicate":
		return rpc(addrs[string(src)], func(cl *wire.Client, rctx context.Context) error {
			return cl.MigrateView(rctx, d.View, string(d.To), addrs[string(d.To)], true)
		})
	case "drop":
		return rpc(addrs[string(d.From)], func(cl *wire.Client, rctx context.Context) error {
			return cl.DropViewPlacement(rctx, d.View)
		})
	}
	return fmt.Errorf("cluster: unknown action %q", d.Action)
}
