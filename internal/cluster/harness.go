package cluster

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// Harness spawns real axmlpeer OS processes for federation tests and
// benchmarks: a built binary, -addr 127.0.0.1:0 listeners, and an
// -addr-file handshake for deterministic readiness (no port guessing,
// no sleep-and-hope).
type Harness struct {
	dir string
	bin string

	mu    sync.Mutex
	procs []*Proc
}

// NewHarness builds the axmlpeer binary once into dir (usually a test
// temp dir) and returns a harness that spawns it.
func NewHarness(dir string) (*Harness, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	bin := filepath.Join(dir, "axmlpeer")
	cmd := exec.Command("go", "build", "-o", bin, "axml/cmd/axmlpeer")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("cluster: building axmlpeer: %v\n%s", err, out)
	}
	return &Harness{dir: dir, bin: bin}, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("cluster: no go.mod above the working directory")
		}
		dir = parent
	}
}

// PeerSpec describes one process to spawn.
type PeerSpec struct {
	// ID is the peer/member identity (also names the addr file).
	ID string
	// Docs installs documents: name → XML content (written to disk for
	// the process).
	Docs map[string]string
	// Coordinator runs the process as the cluster coordinator.
	Coordinator bool
	// Round is the coordinator's self-stepping interval (0 = rounds
	// only on STEP).
	Round time.Duration
	// Join is the coordinator address a member registers with.
	Join string
	// Heartbeat overrides the member's HELLO interval.
	Heartbeat time.Duration
	// ExtraArgs are appended verbatim.
	ExtraArgs []string
}

// Proc is one running axmlpeer process.
type Proc struct {
	ID   string
	Addr string

	cmd  *exec.Cmd
	done chan struct{}

	mu  sync.Mutex
	out bytes.Buffer
}

// lockedBuffer serializes process output writes with Output reads.
type lockedBuffer struct{ p *Proc }

func (b lockedBuffer) Write(data []byte) (int, error) {
	b.p.mu.Lock()
	defer b.p.mu.Unlock()
	return b.p.out.Write(data)
}

// Output returns everything the process wrote so far (stdout+stderr).
func (p *Proc) Output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// Stop asks the process to shut down gracefully (SIGTERM) and waits up
// to timeout before killing it. The error reports a forced kill.
func (p *Proc) Stop(timeout time.Duration) error {
	select {
	case <-p.done:
		return nil
	default:
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		return nil
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("cluster: %s did not exit within %s; killed", p.ID, timeout)
	}
}

// Kill terminates the process immediately (the member-dies-mid-flight
// fault injection).
func (p *Proc) Kill() {
	select {
	case <-p.done:
		return
	default:
	}
	_ = p.cmd.Process.Kill()
	<-p.done
}

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Start spawns one axmlpeer process per the spec and waits until it is
// listening (its actual address appears in the -addr-file).
func (h *Harness) Start(spec PeerSpec) (*Proc, error) {
	addrFile := filepath.Join(h.dir, spec.ID+".addr")
	_ = os.Remove(addrFile)
	args := []string{
		"-addr", "127.0.0.1:0",
		"-id", spec.ID,
		"-addr-file", addrFile,
		"-log-level", "debug",
	}
	for name, content := range spec.Docs {
		file := filepath.Join(h.dir, spec.ID+"-"+name+".xml")
		if err := os.WriteFile(file, []byte(content), 0o644); err != nil {
			return nil, err
		}
		args = append(args, "-doc", name+"="+file)
	}
	if spec.Coordinator {
		args = append(args, "-coordinator")
		if spec.Round > 0 {
			args = append(args, "-round", spec.Round.String())
		}
	}
	if spec.Join != "" {
		args = append(args, "-join", spec.Join)
		if spec.Heartbeat > 0 {
			args = append(args, "-hb", spec.Heartbeat.String())
		}
	}
	args = append(args, spec.ExtraArgs...)

	p := &Proc{ID: spec.ID, done: make(chan struct{})}
	p.cmd = exec.Command(h.bin, args...)
	p.cmd.Stdout = lockedBuffer{p}
	p.cmd.Stderr = lockedBuffer{p}
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting %s: %w", spec.ID, err)
	}
	go func() {
		_ = p.cmd.Wait()
		close(p.done)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(data)) > 0 {
			p.Addr = string(bytes.TrimSpace(data))
			break
		}
		if p.Exited() {
			return nil, fmt.Errorf("cluster: %s exited before listening:\n%s", spec.ID, p.Output())
		}
		if time.Now().After(deadline) {
			p.Kill()
			return nil, fmt.Errorf("cluster: %s never published its address:\n%s", spec.ID, p.Output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.mu.Lock()
	h.procs = append(h.procs, p)
	h.mu.Unlock()
	return p, nil
}

// Close stops every process the harness started (graceful first,
// forced after 5s).
func (h *Harness) Close() {
	h.mu.Lock()
	procs := h.procs
	h.procs = nil
	h.mu.Unlock()
	for _, p := range procs {
		_ = p.Stop(5 * time.Second)
	}
}
