// Package cluster is the federated control plane: adaptive view
// placement across real axmlpeer processes over TCP, where
// internal/placement runs it across simulated peers in one process.
//
// Roles:
//
//   - A Member wraps one deployment (one axmlpeer process): it
//     registers with the coordinator (HELLO heartbeats), reports its
//     placement demand on request (DEMAND — the serializable form of
//     its placement.Observer aggregates, selectivities estimated
//     locally where the data lives), actuates shipping orders
//     (MIGRATE/REPLICATE send the materialized view to another member
//     via ACCEPTVIEW; DROPVIEW drops the local copy) and forwards
//     queries over documents another member hosts (one hop, marked
//     +fwd so demand is attributed once and routes cannot loop).
//
//   - The Coordinator runs placement rounds over the membership: it
//     collects every member's demand export (per-call timeouts,
//     bounded retry with backoff), aggregates per-(view, member)
//     demand, runs the same placement.Scorer the in-process controller
//     uses, and actuates the winning decisions through the control
//     verbs. It fails open: an unreachable member degrades to its
//     last-known demand, decayed each missed round — a down peer ages
//     out of the demand picture instead of wedging the round.
//
// The Harness spawns real OS processes for tests and benchmarks
// (axmlbench -tcp measures the federated convergence trajectory, E17).
//
// What this layer deliberately does not do yet: cross-deployment view
// maintenance. A view adopted from another member is a point-in-time
// snapshot, refreshed only by a re-ship (the next REPLICATE to the
// same member swaps the content in place); gossip-style delta
// propagation between deployments is the natural follow-on.
package cluster
