package cluster

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/netsim"
	"axml/internal/peer"
	"axml/internal/placement"
	"axml/internal/session"
	"axml/internal/view"
	"axml/internal/wire"
	"axml/internal/xmltree"
)

// catalogXML builds a small catalog document.
func catalogXML(items int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&b, "<item><name>item%d</name><price>%d</price></item>", i, (i*37)%1000)
	}
	b.WriteString("</catalog>")
	return b.String()
}

// node is one in-process deployment: its own core.System, view manager,
// member agent and wire server on a real TCP listener — the full
// federation stack minus the OS process boundary.
type node struct {
	id    string
	sys   *core.System
	views *view.Manager
	obsv  *placement.Observer
	mem   *Member
	addr  string
}

func startMemberNode(t *testing.T, id string, docs map[string]string, coordAddr string) *node {
	t.Helper()
	nw := netsim.New()
	netsim.Uniform(nw, []netsim.PeerID{netsim.PeerID(id)}, netsim.DefaultLink)
	sys := core.NewSystem(nw)
	p := sys.MustAddPeer(netsim.PeerID(id))
	for name, content := range docs {
		if err := p.InstallDocument(name, xmltree.MustParse(content)); err != nil {
			t.Fatal(err)
		}
	}
	views := view.NewManager(sys)
	obsv := placement.NewObserver()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{Peer: p, Views: views,
		SessionOptions: []session.LocalOption{session.WithTrafficSink(obsv)}}
	mem, err := NewMember(MemberConfig{
		ID:                id,
		Advertise:         l.Addr().String(),
		Coordinator:       coordAddr,
		SelfPeer:          netsim.PeerID(id),
		HeartbeatInterval: 50 * time.Millisecond,
		RPCTimeout:        2 * time.Second,
	}, sys, views, obsv)
	if err != nil {
		t.Fatal(err)
	}
	srv.Control = mem
	srv.Forward = mem
	go srv.Serve(l) //nolint:errcheck // closed by test cleanup
	mem.Start()
	t.Cleanup(func() {
		mem.Close()
		l.Close()
		views.Close()
		sys.Close()
	})
	return &node{id: id, sys: sys, views: views, obsv: obsv, mem: mem, addr: l.Addr().String()}
}

func startCoordinatorNode(t *testing.T, cfg CoordinatorConfig) (*Coordinator, string) {
	t.Helper()
	coord := NewCoordinator(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{Peer: peer.New("coord"), Control: coord}
	go srv.Serve(l) //nolint:errcheck // closed by test cleanup
	t.Cleanup(func() { l.Close() })
	return coord, l.Addr().String()
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func dialT(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFederationMigratesToConsumer is the in-process end-to-end round:
// member A hosts the catalog and a full-copy view, member B generates
// all the demand (its queries forward to A), one coordinator round
// observes that and ships the copy to B, after which B serves locally.
func TestFederationMigratesToConsumer(t *testing.T) {
	coord, coordAddr := startCoordinatorNode(t, CoordinatorConfig{})
	a := startMemberNode(t, "a", map[string]string{"catalog": catalogXML(40)}, coordAddr)
	b := startMemberNode(t, "b", nil, coordAddr)
	if err := a.views.Define("copy", `doc("catalog")`, "a"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "B to learn the catalog route", func() bool {
		return b.mem.Routes()["catalog"] == a.addr
	})

	// Skewed demand: every query arrives at B, which forwards to A.
	cb := dialT(t, b.addr)
	for i := 0; i < 12; i++ {
		out, err := cb.QueryAll(`doc("catalog")/item/name`)
		if err != nil {
			t.Fatalf("forwarded query %d: %v", i, err)
		}
		if len(out) != 40 {
			t.Fatalf("forwarded query rows = %d, want 40", len(out))
		}
	}

	decisions, err := coord.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var moved bool
	for _, d := range decisions {
		if d.View == "copy" && d.To == "b" && (d.Action == "migrate" || d.Action == "replicate") {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("round did not move the copy to the consumer: %v", decisions)
	}

	// B now holds the adopted copy and serves without forwarding.
	waitFor(t, 5*time.Second, "the copy to land at B", func() bool {
		sites, ok := b.views.PlacementsOf("copy")
		return ok && len(sites) == 1
	})
	out, err := cb.QueryAll(`doc("catalog")/item/name`)
	if err != nil {
		t.Fatalf("query after migration: %v", err)
	}
	if len(out) != 40 {
		t.Errorf("rows after migration = %d, want 40", len(out))
	}

	// The next round's fresh exports surface the new placement in the
	// coordinator's aggregated map.
	if _, err := coord.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	placements, log, ok := coord.ClusterPlacements()
	if !ok {
		t.Fatal("coordinator must report cluster placements")
	}
	var atB bool
	for _, p := range placements {
		if p.View == "copy" && p.At == "b" {
			atB = true
		}
	}
	if !atB {
		t.Errorf("aggregated placements = %+v, want copy@b", placements)
	}
	if len(log) == 0 {
		t.Error("decision log empty after an actuated round")
	}
}

// TestCoordinatorFailOpenMemberDown: a member that is unreachable at
// round start degrades (down, last demand decayed) without failing the
// round for everyone else.
func TestCoordinatorFailOpenMemberDown(t *testing.T) {
	coord, coordAddr := startCoordinatorNode(t, CoordinatorConfig{
		RPCTimeout:   200 * time.Millisecond,
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
	})
	startMemberNode(t, "alive", map[string]string{"catalog": catalogXML(5)}, coordAddr)

	// A member whose address nobody answers: a listener we close right
	// away keeps the port reserved-but-dead.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if _, err := coord.Hello(wire.MemberInfo{ID: "ghost", Addr: deadAddr}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "the live member to register", func() bool {
		return len(coord.MemberStatuses()) == 2
	})

	start := time.Now()
	if _, err := coord.Step(context.Background()); err != nil {
		t.Fatalf("round must fail open, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("round took %s; the dead member must not wedge it", d)
	}
	for _, st := range coord.MemberStatuses() {
		switch st.ID {
		case "ghost":
			if !st.Down {
				t.Error("ghost must be marked down")
			}
		case "alive":
			if st.Down || !st.HasDemand {
				t.Errorf("alive member state = %+v", st)
			}
		}
	}
}

// slowControl answers one DEMAND normally, then blocks until released —
// the member-hangs-mid-round fault.
type slowControl struct {
	wire.Control
	export  placement.Export
	calls   chan struct{}
	release chan struct{}
}

func (s *slowControl) Demand(context.Context) (placement.Export, error) {
	select {
	case s.calls <- struct{}{}:
		return s.export, nil
	default:
		<-s.release
		return s.export, nil
	}
}

func (s *slowControl) Hello(wire.MemberInfo) ([]wire.MemberInfo, error) { return nil, nil }
func (s *slowControl) ClusterPlacements() ([]view.PlacementInfo, []placement.Decision, bool) {
	return nil, nil, false
}

// TestCoordinatorDemandTimeout: a member that stops answering DEMAND
// times out within the retry envelope and degrades to its last-known
// (decayed) demand; the round still completes.
func TestCoordinatorDemandTimeout(t *testing.T) {
	coord, _ := startCoordinatorNode(t, CoordinatorConfig{
		RPCTimeout:   150 * time.Millisecond,
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
	})
	stub := &slowControl{
		export:  placement.Export{Member: "slow", Loads: []placement.LoadExport{{Doc: "d", Weight: 8}}},
		calls:   make(chan struct{}, 1), // first Demand succeeds, later ones block
		release: make(chan struct{}),
	}
	defer close(stub.release)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{Peer: peer.New("slow"), Control: stub}
	go srv.Serve(l) //nolint:errcheck // closed by test cleanup
	t.Cleanup(func() { l.Close() })
	if _, err := coord.Hello(wire.MemberInfo{ID: "slow", Addr: l.Addr().String()}); err != nil {
		t.Fatal(err)
	}

	if _, err := coord.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	sts := coord.MemberStatuses()
	if len(sts) != 1 || sts[0].Down || !sts[0].HasDemand {
		t.Fatalf("after healthy round: %+v", sts)
	}

	start := time.Now()
	if _, err := coord.Step(context.Background()); err != nil {
		t.Fatalf("round with a hung member must fail open, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("hung member stalled the round for %s", d)
	}
	sts = coord.MemberStatuses()
	if len(sts) != 1 || !sts[0].Down || !sts[0].HasDemand {
		t.Fatalf("after timed-out round: %+v (want down with retained demand)", sts)
	}
}

// TestMigrateTargetDiesMidShip: a target that dies mid-ACCEPTVIEW never
// confirms the landing, so the source keeps its copy — nothing is ever
// half-moved.
func TestMigrateTargetDiesMidShip(t *testing.T) {
	a := startMemberNode(t, "a", map[string]string{"catalog": catalogXML(30)}, "")
	if err := a.views.Define("copy", `doc("catalog")`, "a"); err != nil {
		t.Fatal(err)
	}

	// The "target": accepts the connection, reads a little, dies.
	dying, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dying.Close() })
	go func() {
		conn, err := dying.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		_, _ = conn.Read(buf)
		conn.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := a.mem.MigrateView(ctx, "copy", "t", dying.Addr().String(), false); err == nil {
		t.Fatal("migrate to a dying target must fail")
	}
	sites, ok := a.views.PlacementsOf("copy")
	if !ok || len(sites) != 1 || sites[0] != "a" {
		t.Fatalf("source placements after failed ship = %v ok=%v (copy must stay)", sites, ok)
	}
}

// TestPartialAcceptViewLandsNothing: ACCEPTVIEW bytes that arrive
// without their line terminator (the sender died mid-write) are not a
// request — the receiving member's catalog stays untouched.
func TestPartialAcceptViewLandsNothing(t *testing.T) {
	b := startMemberNode(t, "b", nil, "")
	conn, err := net.Dial("tcp", b.addr)
	if err != nil {
		t.Fatal(err)
	}
	partial := `ACCEPTVIEW copy <x:ship query="doc(&quot;catalog&quot;)" origin="a"><catalog><item>`
	if _, err := conn.Write([]byte(partial)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // dead before the newline: the line never existed

	time.Sleep(100 * time.Millisecond)
	if views := b.views.Views(); len(views) != 0 {
		t.Fatalf("partial ship landed a view: %+v", views)
	}
}

// TestMemberByeOnClose: a closing member deregisters, so the next round
// does not wait on its timeout envelope.
func TestMemberByeOnClose(t *testing.T) {
	coord, coordAddr := startCoordinatorNode(t, CoordinatorConfig{})
	m := startMemberNode(t, "leaver", nil, coordAddr)
	waitFor(t, 5*time.Second, "the member to register", func() bool {
		return len(coord.MemberStatuses()) == 1
	})
	m.mem.Close()
	waitFor(t, 5*time.Second, "the member to deregister", func() bool {
		return len(coord.MemberStatuses()) == 0
	})
}
