// Integration tests exercising the public facade end to end: the
// scenarios a downstream user of the library starts from.
package axml_test

import (
	"strings"
	"testing"

	axml "axml"
	"axml/internal/axmldoc"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	sys := axml.NewLocalSystem()
	client := sys.MustAddPeer("client")
	store := sys.MustAddPeer("store")

	if err := store.InstallDocument("catalog", axml.MustParseXML(
		`<catalog><item><name>chair</name><price>30</price></item>
		 <item><name>desk</name><price>120</price></item></catalog>`)); err != nil {
		t.Fatal(err)
	}
	q := axml.MustParseQuery(
		`for $i in doc("catalog")/item where $i/price < 100 return <hit>{$i/name/text()}</hit>`)
	res, err := sys.Eval(client.ID, &axml.Query{Q: q, At: client.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forest) != 1 || res.Forest[0].TextContent() != "chair" {
		t.Errorf("facade query result wrong: %v", res.Forest)
	}
	if st := sys.Net.Stats(); st.Messages == 0 {
		t.Error("remote document fetch should be visible in stats")
	}
}

func TestFacadeOptimizeEndToEnd(t *testing.T) {
	build := func() *axml.System {
		sys := axml.NewLocalSystem()
		sys.MustAddPeer("client")
		data := sys.MustAddPeer("data")
		items := axml.MustParseXML(`<catalog/>`)
		for i := 0; i < 100; i++ {
			items.AppendChild(axml.MustParseXML(
				`<item><name>thing</name><price>` + priceFor(i) + `</price></item>`))
		}
		if err := data.InstallDocument("catalog", items); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	q := axml.MustParseQuery(
		`for $i in doc("catalog")/item where $i/price < 5 return $i/name`)
	e := &axml.Query{Q: q, At: "client"}

	naiveSys := build()
	nRes, err := naiveSys.Eval("client", e)
	if err != nil {
		t.Fatal(err)
	}
	optSys := build()
	plan, _, err := axml.Optimize(optSys, "client", e, axml.OptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oRes, err := optSys.Eval("client", plan.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(nRes.Forest) != len(oRes.Forest) {
		t.Fatalf("plans disagree: %d vs %d", len(nRes.Forest), len(oRes.Forest))
	}
	if optSys.Net.Stats().Bytes >= naiveSys.Net.Stats().Bytes {
		t.Errorf("optimized plan should move fewer bytes: %d vs %d",
			optSys.Net.Stats().Bytes, naiveSys.Net.Stats().Bytes)
	}
}

func priceFor(i int) string {
	if i%20 == 0 {
		return "3"
	}
	return "500"
}

func TestFacadeExpressionXMLRoundTrip(t *testing.T) {
	q := axml.MustParseQuery(`doc("d")/x`)
	e := &axml.EvalAt{At: "p2", E: &axml.Query{Q: q, At: "p2"}}
	xmlForm := axml.ExprToXML(e)
	back, err := axml.ParseExpr(xmlForm)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != e.String() {
		t.Errorf("round trip changed: %s vs %s", back.String(), e.String())
	}
}

func TestFacadeSchemaValidation(t *testing.T) {
	s, err := axml.ParseSchema("root a\na := b*\nb := #PCDATA")
	if err != nil {
		t.Fatal(err)
	}
	good := axml.MustParseXML(`<a><b>x</b></a>`)
	if !s.Valid(good) {
		t.Error("valid doc rejected")
	}
	bad := axml.MustParseXML(`<a><c/></a>`)
	if s.Valid(bad) {
		t.Error("invalid doc accepted")
	}
}

func TestFacadeActivationViaAxmldoc(t *testing.T) {
	sys := axml.NewLocalSystem()
	host := sys.MustAddPeer("host")
	data := sys.MustAddPeer("data")
	if err := data.InstallDocument("log", axml.MustParseXML(`<log><e>one</e></log>`)); err != nil {
		t.Fatal(err)
	}
	q := axml.MustParseQuery(`for $e in doc("log")/e return $e`)
	if err := data.RegisterService(&axml.Service{Name: "tail", Provider: "data", Body: q}); err != nil {
		t.Fatal(err)
	}
	page := axml.MustParseXML(`<view><sc provider="data" service="tail"/></view>`)
	if err := host.InstallDocument("view", page); err != nil {
		t.Fatal(err)
	}
	act := axmldoc.New(sys.System, host)
	if _, err := act.ActivateDocument("view"); err != nil {
		t.Fatal(err)
	}
	// Activation publishes a new copy-on-write epoch; serialize the
	// newest root rather than the pre-activation pointer.
	d, ok := host.Document("view")
	if !ok {
		t.Fatal("view document vanished")
	}
	out := axml.SerializeXML(d.Root)
	if !strings.Contains(out, "<e>one</e>") {
		t.Errorf("activation result missing: %s", out)
	}
}

func TestFacadeMaterializedViews(t *testing.T) {
	sys := axml.NewLocalSystem()
	defer sys.Close()
	sys.MustAddPeer("client")
	data := sys.MustAddPeer("data")
	cat := axml.MustParseXML(`<catalog/>`)
	for i := 0; i < 50; i++ {
		cat.AppendChild(axml.MustParseXML(
			`<item><name>thing</name><price>` + priceFor(i) + `</price></item>`))
	}
	if err := data.InstallDocument("catalog", cat); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineView("cheap",
		`for $i in doc("catalog")/item where $i/price < 100 return $i`, "client"); err != nil {
		t.Fatal(err)
	}
	infos := sys.Views()
	if len(infos) != 1 || infos[0].Name != "cheap" {
		t.Fatalf("Views() = %+v", infos)
	}
	q := axml.MustParseQuery(
		`for $i in doc("catalog")/item where $i/price < 5 return $i/name`)
	e := &axml.Query{Q: q, At: "client"}
	plan, _, err := axml.Optimize(sys, "client", e, axml.OptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Expr.String(), "view:cheap") {
		t.Errorf("facade Optimize ignored the view: %s", plan)
	}
	res, err := sys.Eval("client", plan.Expr)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := sys.Eval("client", e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forest) != len(naive.Forest) {
		t.Errorf("view plan answer differs: %d vs %d", len(res.Forest), len(naive.Forest))
	}
	// Maintenance: a base update must reach the view.
	doc, _ := data.Document("catalog")
	if err := data.AddChild(doc.Root.ID,
		axml.MustParseXML(`<item><name>late</name><price>2</price></item>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RefreshViews(); err != nil {
		t.Fatal(err)
	}
	res2, err := sys.Eval("client", plan.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Forest) != len(res.Forest)+1 {
		t.Errorf("refreshed view should surface the new item: %d vs %d",
			len(res2.Forest), len(res.Forest))
	}
	if err := sys.DropView("cheap"); err != nil {
		t.Fatal(err)
	}
	if len(sys.Views()) != 0 {
		t.Error("view survived DropView")
	}
}

func TestFacadeDefaultRules(t *testing.T) {
	rules := axml.DefaultRules()
	if len(rules) < 7 {
		t.Errorf("rule set too small: %d", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name()] = true
	}
	for _, want := range []string{
		"pushSelection(11)", "pushOverCall(16)", "delegate(10/14)",
		"shareTransfer(13)", "routeIntro(12)", "scRelocate(15)",
	} {
		if !names[want] {
			t.Errorf("missing rule %q", want)
		}
	}
}
