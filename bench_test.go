// Benchmarks regenerating the experiment suite (one per table of
// EXPERIMENTS.md, E1–E11) plus micro-benchmarks of the substrates.
// Each experiment benchmark evaluates the competing plans on fresh
// systems and reports wire bytes per operation alongside wall time,
// so the shape (who wins, by what factor) is visible in the -benchmem
// output. cmd/axmlbench prints the same data as tables.
package axml_test

import (
	"fmt"
	"testing"

	axml "axml"
	"axml/internal/bench"
	"axml/internal/core"
	"axml/internal/gendoc"
	"axml/internal/netsim"
	"axml/internal/workload"
	"axml/internal/xmltree"
	"axml/internal/xpath"
	"axml/internal/xquery"
	"axml/internal/xtype"
)

// --- Experiment benchmarks (tables E1–E10) ------------------------------

// evalOnFresh builds a fresh system per iteration and evaluates the
// plan, reporting wire bytes and virtual time as custom metrics.
func evalOnFresh(b *testing.B, mk func() (*core.System, core.Expr, netsim.PeerID)) {
	b.Helper()
	var bytes, vt float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, e, at := mk()
		res, err := sys.Eval(at, e)
		if err != nil {
			b.Fatal(err)
		}
		st := sys.Net.Stats()
		bytes = float64(st.Bytes)
		vt = res.VT
		sys.Close()
	}
	b.ReportMetric(bytes, "wirebytes/op")
	b.ReportMetric(vt, "simms/op")
}

func BenchmarkE1SelectionPushdown(b *testing.B) {
	for _, sel := range []float64{0.01, 0.2} {
		threshold := int(sel * 1000)
		qsrc := fmt.Sprintf(
			`for $i in doc("catalog")/item where $i/price < %d return <hit>{$i/name}</hit>`, threshold)
		for _, mode := range []string{"naive", "pushed"} {
			b.Run(fmt.Sprintf("sel=%.2f/%s", sel, mode), func(b *testing.B) {
				evalOnFresh(b, func() (*core.System, core.Expr, netsim.PeerID) {
					sys := benchSystem("client", "data")
					installBenchCatalog(sys, "data", 500)
					q := xquery.MustParse(qsrc)
					var e core.Expr = &core.Query{Q: q, At: "client"}
					if mode == "pushed" {
						dec, ok := xquery.Decompose(q)
						if !ok {
							b.Fatal("not decomposable")
						}
						e = &core.Query{Q: dec.Local, At: "client", Args: []core.Expr{
							&core.EvalAt{At: "data", E: &core.Query{Q: dec.Remote, At: "data"}},
						}}
					}
					return sys, e, "client"
				})
			})
		}
	}
}

func BenchmarkE2QueryDelegation(b *testing.B) {
	qsrc := `for $i in doc("catalog")/item, $j in doc("catalog")/item
		where $i/price = $j/price and $i/@id != $j/@id return <dup>{$i/name}</dup>`
	for _, mode := range []string{"local-loaded", "delegated"} {
		b.Run(mode, func(b *testing.B) {
			evalOnFresh(b, func() (*core.System, core.Expr, netsim.PeerID) {
				sys := benchSystem("client", "idle")
				p, _ := sys.Peer("client")
				if err := p.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
					Items: 100, PriceMax: 100, Seed: 11})); err != nil {
					b.Fatal(err)
				}
				sys.SetComputeFactor("client", 64)
				q := xquery.MustParse(qsrc)
				var e core.Expr = &core.Query{Q: q, At: "client"}
				if mode == "delegated" {
					e = &core.EvalAt{At: "idle", E: &core.Query{Q: q, At: "idle"}}
				}
				return sys, e, "client"
			})
		})
	}
}

func BenchmarkE3Rerouting(b *testing.B) {
	payload := xmltree.E("blob", xmltree.T(string(make([]byte, 8192))))
	for _, mode := range []string{"direct-slow", "relayed"} {
		b.Run(mode, func(b *testing.B) {
			evalOnFresh(b, func() (*core.System, core.Expr, netsim.PeerID) {
				net := netsim.New()
				sys := core.NewSystem(net)
				sys.MustAddPeer("src")
				sys.MustAddPeer("dst")
				sys.MustAddPeer("hub")
				net.SetLinkBoth("src", "dst", netsim.Link{LatencyMs: 150, BytesPerMs: 20})
				net.SetLinkBoth("src", "hub", netsim.Link{LatencyMs: 4, BytesPerMs: 2000})
				net.SetLinkBoth("hub", "dst", netsim.Link{LatencyMs: 4, BytesPerMs: 2000})
				tree := xmltree.DeepCopy(payload)
				var e core.Expr = &core.Send{Dest: core.DestPeer{P: "dst"},
					Payload: &core.Tree{Node: tree, At: "src"}}
				if mode == "relayed" {
					e = &core.Relay{Via: []netsim.PeerID{"hub"}, Dest: core.DestPeer{P: "dst"},
						Payload: &core.Tree{Node: tree, At: "src"}}
				}
				return sys, e, "src"
			})
		})
	}
}

func BenchmarkE4TransferSharing(b *testing.B) {
	qsrc := `param $a, $b; <cmp>{count($a/item), count($b/item)}</cmp>`
	for _, mode := range []string{"unshared", "shared"} {
		b.Run(mode, func(b *testing.B) {
			evalOnFresh(b, func() (*core.System, core.Expr, netsim.PeerID) {
				sys := benchSystem("client", "data")
				installBenchCatalog(sys, "data", 500)
				q := xquery.MustParse(qsrc)
				e := &core.Query{Q: q, At: "client", ShareArgs: mode == "shared",
					Args: []core.Expr{
						&core.Doc{Name: "catalog", At: "data"},
						&core.Doc{Name: "catalog", At: "data"},
					}}
				return sys, e, "client"
			})
		})
	}
}

func BenchmarkE5PushOverCall(b *testing.B) {
	qsrc := `param $in; for $o in $in where $o/price < 100 return $o/name`
	for _, mode := range []string{"fetch-filter", "pushed"} {
		b.Run(mode, func(b *testing.B) {
			evalOnFresh(b, func() (*core.System, core.Expr, netsim.PeerID) {
				sys := benchSystem("client", "provider")
				installBenchCatalog(sys, "provider", 500)
				registerOffers(sys, "provider")
				q := xquery.MustParse(qsrc)
				at := netsim.PeerID("client")
				if mode == "pushed" {
					at = "provider"
				}
				inner := &core.Query{Q: q, At: at, Args: []core.Expr{
					&core.ServiceCall{Provider: "provider", Service: "offers"},
				}}
				var e core.Expr = inner
				if mode == "pushed" {
					e = &core.EvalAt{At: "provider", E: inner}
				}
				return sys, e, "client"
			})
		})
	}
}

func BenchmarkE6PickStrategies(b *testing.B) {
	// The strategies differ in latency, not compute; benchmark the
	// evaluation through each.
	for _, strat := range []string{"first", "nearest"} {
		b.Run(strat, func(b *testing.B) {
			evalOnFresh(b, func() (*core.System, core.Expr, netsim.PeerID) {
				peers := []netsim.PeerID{"client", "rep0", "rep1", "rep2"}
				net := netsim.New()
				netsim.RandomWAN(net, peers, 17, 5, 120, 100, 2000)
				sys := core.NewSystem(net)
				for _, p := range peers {
					sys.MustAddPeer(p)
				}
				for _, id := range peers[1:] {
					p, _ := sys.Peer(id)
					if err := p.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
						Items: 50, PriceMax: 100, Seed: 9})); err != nil {
						b.Fatal(err)
					}
					sys.Generics.RegisterDoc("catalog", axml.DocReplica{Doc: "catalog", At: id})
				}
				if strat == "nearest" {
					sys.Generics.SetStrategy(gendoc.Nearest{Net: sys.Net})
				}
				return sys, &core.Doc{Name: "catalog", At: core.AnyPeer}, "client"
			})
		})
	}
}

func BenchmarkE7Continuous(b *testing.B) {
	for _, mode := range []string{"recompute", "incremental"} {
		b.Run(mode, func(b *testing.B) {
			cat := workload.Catalog(workload.CatalogSpec{Items: 1000, PriceMax: 100, Seed: 21})
			env := &xquery.Env{Resolve: func(string) (*xmltree.Node, error) { return cat, nil }}
			q := xquery.MustParse(
				`for $i in doc("c")/item where $i/price < 50 return <hit>{$i/name/text()}</hit>`)
			var delta func() ([]*xmltree.Node, error)
			if mode == "incremental" {
				inc, ok := xquery.NewDeltaFor(q, env)
				if !ok {
					b.Fatal("not incrementalizable")
				}
				delta = inc.Delta
			} else {
				delta = xquery.NewRecompute(q, env).Delta
			}
			if _, err := delta(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cat.AppendChild(xmltree.E("item",
					xmltree.A("id", fmt.Sprintf("b%d", i)),
					xmltree.E("name", xmltree.T(fmt.Sprintf("fresh-%d", i))),
					xmltree.E("price", xmltree.T(fmt.Sprint(i%100)))))
				if _, err := delta(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8Optimizer(b *testing.B) {
	// Measures the optimizer itself: plan search time over the default
	// rule set for the Example 1 query.
	sys := axml.Wrap(benchSystem("client", "data", "spare"))
	installBenchCatalog(sys.System, "data", 200)
	q := xquery.MustParse(
		`for $i in doc("catalog")/item where $i/price < 30 return <hit>{$i/name}</hit>`)
	e := &core.Query{Q: q, At: "client"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, _, err := axml.Optimize(sys, "client", e, axml.OptOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Derivation) == 0 {
			b.Fatal("optimizer found nothing")
		}
	}
}

func BenchmarkE9SoftwareDist(b *testing.B) {
	for _, mode := range []string{"pull", "tree"} {
		b.Run(mode, func(b *testing.B) {
			var originBytes float64
			for i := 0; i < b.N; i++ {
				t, err := bench.E9SoftwareDist([]int{7}, 60)
				if err != nil {
					b.Fatal(err)
				}
				row := t.Rows[0]
				if mode == "pull" {
					fmt.Sscanf(row[1], "%f", &originBytes)
				} else {
					fmt.Sscanf(row[2], "%f", &originBytes)
				}
			}
			b.ReportMetric(originBytes, "originbytes/op")
		})
	}
}

func BenchmarkE10Activation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10Activation(4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11Views(b *testing.B) {
	// Bytes shipped with a view at every client vs none; the E11 table
	// reports the full sweep.
	for _, mode := range []string{"no-view", "views"} {
		b.Run(mode, func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				t, err := bench.E11Views(3, 100, 3, 10)
				if err != nil {
					b.Fatal(err)
				}
				row := t.Rows[0]
				if mode == "views" {
					row = t.Rows[len(t.Rows)-1]
				}
				fmt.Sscanf(row[1], "%f", &bytes)
			}
			b.ReportMetric(bytes, "wirebytes/op")
		})
	}
}

// --- Substrate micro-benchmarks -----------------------------------------

func BenchmarkXMLParse(b *testing.B) {
	doc := xmltree.Serialize(workload.Catalog(workload.CatalogSpec{
		Items: 200, PriceMax: 100, DescWords: 10, Seed: 1}))
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.Parse(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLSerialize(b *testing.B) {
	tree := workload.Catalog(workload.CatalogSpec{Items: 200, PriceMax: 100, DescWords: 10, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xmltree.Serialize(tree)
	}
}

func BenchmarkCanonicalHash(b *testing.B) {
	tree := workload.Catalog(workload.CatalogSpec{Items: 200, PriceMax: 100, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xmltree.Hash(tree)
	}
}

func BenchmarkXPathSelect(b *testing.B) {
	tree := workload.Catalog(workload.CatalogSpec{Items: 500, PriceMax: 100, Seed: 1})
	c := xpath.MustCompile(`item[price < 50]/name`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Select(tree); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXQueryFLWR(b *testing.B) {
	tree := workload.Catalog(workload.CatalogSpec{Items: 500, PriceMax: 100, Seed: 1})
	env := &xquery.Env{Resolve: func(string) (*xmltree.Node, error) { return tree, nil }}
	q := xquery.MustParse(
		`for $i in doc("c")/item where $i/price < 50 order by $i/price return <r>{$i/name}</r>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlushkovValidate(b *testing.B) {
	schema := xtype.MustParseSchema(`
root catalog
catalog := item*
item := (name, price, desc?) @id @cat
name := #PCDATA
price := #PCDATA
desc := #PCDATA
`)
	tree := workload.Catalog(workload.CatalogSpec{Items: 200, PriceMax: 100, DescWords: 3, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !schema.Valid(tree) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkExprSerialization(b *testing.B) {
	q := xquery.MustParse(`for $i in doc("catalog")/item where $i/price < 50 return $i/name`)
	e := &core.EvalAt{At: "data", E: &core.Query{Q: q, At: "data", Args: []core.Expr{
		&core.Doc{Name: "catalog", At: "data"},
	}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := core.SerializeExpr(e)
		if _, err := core.ParseExprBytes(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers -------------------------------------------------------------

func benchSystem(peers ...netsim.PeerID) *core.System {
	net := netsim.New()
	netsim.Uniform(net, peers, netsim.Link{LatencyMs: 20, BytesPerMs: 200})
	sys := core.NewSystem(net)
	for _, p := range peers {
		sys.MustAddPeer(p)
	}
	return sys
}

func installBenchCatalog(sys *core.System, at netsim.PeerID, items int) {
	p, _ := sys.Peer(at)
	if err := p.InstallDocument("catalog", workload.Catalog(workload.CatalogSpec{
		Items: items, PriceMax: 1000, DescWords: 10, Seed: 7})); err != nil {
		panic(err)
	}
}

func registerOffers(sys *core.System, at netsim.PeerID) {
	p, _ := sys.Peer(at)
	body := xquery.MustParse(
		`for $i in doc("catalog")/item return <offer>{$i/name, $i/price}</offer>`)
	if err := p.RegisterService(&axml.Service{Name: "offers", Provider: at, Body: body}); err != nil {
		panic(err)
	}
}
